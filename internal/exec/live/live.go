// Package live is the message-passing Jade executor that runs over real
// transports (goroutine pipes or TCP sockets) instead of the discrete-
// event simulator: the repo's analogue of the paper's network-of-
// workstations implementation on the Mica Ethernet array.
//
// Topology is hub-and-spoke: the coordinator (machine 0) runs the main
// program, the dependency engine, and the object directory; N workers
// (machines 1..N) run task bodies. All coherence traffic relays through
// the coordinator, the way every message on the paper's shared Ethernet
// passed through one wire. The coordinator and the simulated distributed
// executor share the same protocol — migrate an object to a writer and
// invalidate the other copies, replicate to readers, retain invalidated
// copies as shadows so re-fetches travel as format.Diff patches — so a
// program debugged on the simulator runs unchanged on sockets.
//
// The division of labor over the wire:
//
//   - Coordinator → worker: task dispatches, object images/patches/zero
//     grants, invalidations, pulls of current object contents, and RPC
//     replies.
//   - Worker → coordinator: every rt.TC operation a body performs
//     (Access, Create, Alloc, Convert, Retract, EndAccess, ...) travels
//     as a small RPC; task completion and pull replies come back the
//     same way.
//
// A task blocked in an RPC sends nothing else, so the per-connection
// FIFO order of transport.Conn gives the same happens-before edges the
// simulator got from virtual time.
package live

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/exec/dist"
	"repro/internal/format"
	"repro/internal/fault"
	"repro/internal/netmodel"
	"repro/internal/rt"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// ringCap bounds the always-on event stream when tracing is off. The
// ring exists for crash forensics — only the recent window matters — so
// it is kept small: the GC scans the whole ring (Events hold string
// labels) on every cycle, and a large ring measurably taxes the
// coordinator's issue rate.
const ringCap = 1 << 12

// Peer is one worker connection the coordinator will drive.
type Peer struct {
	// Conn is the established transport connection to a worker that is
	// already running Serve.
	Conn transport.Conn
}

// Options configure the coordinator.
type Options struct {
	// Peers are the connected workers, machines 1..len(Peers).
	Peers []Peer
	// Bodies is the body table shared with same-process workers. nil
	// allocates a fresh table (fine when all workers are remote).
	Bodies *BodyTable
	// MaxLiveTasks bounds concurrently existing tasks; creators above
	// the bound inline the child (§3.3). 0 means 64 × workers.
	MaxLiveTasks int
	// Format is the coordinator's native byte order.
	Format format.ByteOrder
	// Trace enables full event recording.
	Trace bool
	// TraceRingSize overrides the always-on event ring's capacity in
	// events (0 = the default ringCap; ignored when Trace is on). Bigger
	// rings widen the /trace and export window at a GC-scan cost — see
	// the ringCap comment.
	TraceRingSize int
	// OnTaskDone, if set, is called synchronously each time a dispatched
	// task retires, with the total retired so far. The chaos harness
	// uses it to fire scripted kills, joins, and drains at deterministic
	// points in a run's progress.
	OnTaskDone func(done int)
	// Fleet, if set, gives the placer a fleet-level load view shared by
	// every coordinator multiplexed onto the same worker fleet: place()
	// compares Load(m) across machines instead of this session's private
	// pendingTasks, so one chatty session cannot pile its tasks onto a
	// worker another session is already saturating. Charge/Uncharge are
	// paired with every pendingTasks transition.
	Fleet FleetView
	// FirstObjectID offsets this executor's object-id space (0 means 1,
	// the classic single-session numbering). The tenant service gives
	// each session a disjoint range so cross-session isolation is
	// checkable by inspection: a foreign id in any cache is a leak.
	FirstObjectID access.ObjectID
}

// FleetView is the shared placement ledger of a multi-session fleet.
// Implementations must be safe for concurrent use and non-blocking:
// Load is read under the coordinator's scheduler lock.
type FleetView interface {
	// Charge records one task placed on machine m of this session.
	Charge(m int)
	// Uncharge reverses a Charge when the task retires or is re-placed.
	Uncharge(m int)
	// Load reports the fleet-wide outstanding task count on machine m.
	Load(m int) int
}

// objDir is the coordinator's directory entry for one object, same
// protocol as the simulated distributed executor.
type objDir struct {
	owner   int
	copies  map[int]bool
	label   string
	version uint64
}

// snapshot is an immutable copy of an object at one content generation,
// retained while any worker's shadow froze at that generation: it is the
// diff base for delta pushes to those workers.
type snapshot struct {
	val  any
	refs int
}

// inputSnap is the shared input-log clone of an object at one version
// (see logInputLocked). val is immutable once stored.
type inputSnap struct {
	ver uint64
	val any
}

// payload is the executor attachment on core tasks.
type payload struct {
	bodyKey  uint64
	group    uint64 // process group owning bodyKey (0 = coordinator's)
	kind     string
	kindArgs []byte
	opts     rt.TaskOpts
	creator  int // machine that executed the withonly-do
	machine  int
	inline   bool
	readyCh  chan struct{}
	skipBody bool

	// body is the closure retained coordinator-side (when the creator
	// runs in the coordinator's process) so the task can be redispatched
	// or replayed after a worker crash consumed the table entry.
	body func(rt.TC)
	// attempt counts dispatch attempts; >0 means redispatch after a
	// placement was lost. Guarded by x.mu.
	attempt int
	// sent is the ownership handshake between dispatch() and the
	// recovery sweep: true once the dispatch frame shipped, at which
	// point orphan recovery (not the dispatch goroutine) owns failures.
	// Guarded by x.mu.
	sent bool
}

// workerLink is the coordinator's view of one connected worker.
type workerLink struct {
	x     *Exec
	m     int // machine index (1-based)
	conn  transport.Conn
	name  string
	caps  map[string]bool
	fmt   format.ByteOrder
	group uint64
	// slots is the concurrent task capacity the worker advertised in its
	// hello; surfaced by SlotStats so quota starvation is debuggable.
	slots int

	// Scheduler load estimate; guarded by x.mu.
	pendingTasks int

	// state is the membership lifecycle; guarded by x.mu.
	state memberState
	// started reports whether recvLoop was launched (and so recvDone
	// will close); guarded by x.mu.
	started bool
	// dead closes when the worker is declared dead, unblocking RPC
	// waiters. lostOnce makes the declaration exactly-once.
	dead     chan struct{}
	lostOnce sync.Once

	// Wire-traffic counters for this link, split by direction. Updated
	// lock-free on the per-frame send/recv hot paths and read
	// transiently by NetStats; the statMu-guarded global ledger keeps
	// only handshake traffic, which flows before the link exists.
	outMsgs, outBytes, inMsgs, inBytes atomic.Int64
	// recvDone closes when the worker's receive loop exits; recovery
	// waits on it so no late frame handler races the directory sweep.
	recvDone chan struct{}
}

// Exec is the live coordinator. Create with New; each Exec runs one
// program.
type Exec struct {
	opts    Options
	eng     *core.Engine
	log     *trace.Log
	start   time.Time
	bodies  *BodyTable
	workers []*workerLink

	// fatal closes when a transport-level failure makes progress
	// impossible (worker connection died, protocol error). Parked waits
	// select on it so the run unwinds instead of hanging.
	fatal     chan struct{}
	fatalOnce sync.Once

	// admitMu serializes handshakes (initial and elastic joins) with
	// machine-index assignment; the handshake itself cannot run under
	// x.mu because it blocks on the connection.
	admitMu sync.Mutex
	// recMu serializes crash recoveries: concurrent deaths are recovered
	// one at a time.
	recMu sync.Mutex

	// mu guards executor bookkeeping: task maps, throttle, RPC routing,
	// scheduler load, membership state, first error.
	mu       sync.Mutex
	cond     *sync.Cond // on mu; broadcast on epoch bumps and fatal
	started  bool
	closing  bool
	epoch    uint64 // membership epoch; parked operations retry on change
	nextMachine int // next machine index to assign (indices never reused)
	tasks    map[core.TaskID]*core.Task
	liveUser int
	nextObj  access.ObjectID
	nextReq  uint64
	pending  map[uint64]chan *wire.Frame // outstanding coordinator→worker RPCs
	firstErr error

	// coh serializes the coherence protocol: directory state, the
	// coordinator's value cache, generation snapshots, and the pushes/
	// pulls that move object bytes. Coarse by design — the protocol's
	// invariants are stated against a serialized transition order, the
	// same order the simulator got for free from virtual time.
	coh       sync.Mutex
	dir       map[access.ObjectID]*objDir
	vals      map[access.ObjectID]any // machine-0 store and relay cache
	cacheVer  map[access.ObjectID]uint64
	verVals   map[access.ObjectID]map[uint64]*snapshot
	shadowVer []map[access.ObjectID]uint64 // per machine: generation its shadow froze at
	// hist is the per-object write-grant history above the cached
	// version; inputs is the per-task input log. Together they make a
	// completed task replayable when its worker dies with the only
	// up-to-date copy of an object (see fault.go).
	hist   map[access.ObjectID][]histEntry
	inputs map[core.TaskID]map[access.ObjectID]any
	// inSnap caches one immutable clone of each object's latest logged
	// version, shared by every input-log entry taken at that version:
	// logged inputs are read-only (replay clones before mutating), so
	// the per-(task,object) clone the log used to take is pure waste.
	inSnap map[access.ObjectID]*inputSnap

	// statMu guards the metrics ledgers.
	statMu    sync.Mutex
	net       netmodel.Stats
	dstats    dist.DeltaStats
	fstats    fault.Stats
	convWords int
	busy      []time.Duration // per machine (0 = coordinator)
	tasksRun  int
	retired   int // dispatched tasks retired (drives Options.OnTaskDone)

	wg sync.WaitGroup // dispatched (non-inline) tasks in flight
}

// New returns a coordinator for the connected workers.
func New(opts Options) (*Exec, error) {
	if len(opts.Peers) == 0 {
		return nil, fmt.Errorf("live: no workers")
	}
	if opts.MaxLiveTasks <= 0 {
		opts.MaxLiveTasks = 64 * len(opts.Peers)
	}
	if opts.Bodies == nil {
		opts.Bodies = NewBodyTable()
	}
	if opts.FirstObjectID == 0 {
		opts.FirstObjectID = 1
	}
	n := len(opts.Peers) + 1
	x := &Exec{
		opts:        opts,
		bodies:      opts.Bodies,
		fatal:       make(chan struct{}),
		nextMachine: 1,
		tasks:       map[core.TaskID]*core.Task{},
		nextObj:     opts.FirstObjectID,
		nextReq:     1,
		pending:     map[uint64]chan *wire.Frame{},
		dir:         map[access.ObjectID]*objDir{},
		vals:        map[access.ObjectID]any{},
		cacheVer:    map[access.ObjectID]uint64{},
		verVals:     map[access.ObjectID]map[uint64]*snapshot{},
		shadowVer:   make([]map[access.ObjectID]uint64, n),
		hist:        map[access.ObjectID][]histEntry{},
		inputs:      map[core.TaskID]map[access.ObjectID]any{},
		inSnap:      map[access.ObjectID]*inputSnap{},
		busy:        make([]time.Duration, n),
	}
	x.cond = sync.NewCond(&x.mu)
	for i := range x.shadowVer {
		x.shadowVer[i] = map[access.ObjectID]uint64{}
	}
	if opts.Trace {
		x.log = trace.New()
	} else if opts.TraceRingSize > 0 {
		x.log = trace.NewRing(opts.TraceRingSize)
	} else {
		x.log = trace.NewRing(ringCap)
	}
	x.eng = core.New(core.Hooks{
		Ready: x.onReady,
		Violation: func(t *core.Task, err error) {
			x.record(trace.Event{Kind: trace.Violation, Task: uint64(t.ID), Label: err.Error()})
			x.fail(err)
		},
		Depend: func(earlier, later *core.Task, obj access.ObjectID) {
			x.record(trace.Event{Kind: trace.Depend, Task: uint64(earlier.ID), Other: uint64(later.ID), Object: uint64(obj)})
		},
	})
	return x, nil
}

// Engine implements rt.Exec.
func (x *Exec) Engine() *core.Engine { return x.eng }

// Log implements rt.Exec.
func (x *Exec) Log() *trace.Log { return x.log }

// Counters implements rt.Exec.
func (x *Exec) Counters() rt.Counters {
	x.statMu.Lock()
	defer x.statMu.Unlock()
	return rt.Counters{
		TasksRun: x.tasksRun,
		Busy:     append([]time.Duration(nil), x.busy...),
	}
}

// NetStats returns the real frame traffic: every protocol frame counted
// once per direction, with the coordinator as machine 0 in ByLink.
func (x *Exec) NetStats() netmodel.Stats {
	x.mu.Lock()
	links := append([]*workerLink(nil), x.workers...)
	x.mu.Unlock()
	x.statMu.Lock()
	s := x.net
	s.ByLink = make(map[netmodel.Link]netmodel.LinkStats, len(x.net.ByLink)+2*len(links))
	for k, v := range x.net.ByLink {
		s.ByLink[k] = v
	}
	x.statMu.Unlock()
	// Fold in the lock-free per-link counters. Links are never removed
	// from x.workers (departed members are state-marked), so departed
	// traffic is still here.
	for _, w := range links {
		if n := w.outMsgs.Load(); n > 0 {
			l := netmodel.Link{Src: 0, Dst: w.m}
			ls := s.ByLink[l]
			ls.Messages += int(n)
			ls.Bytes += w.outBytes.Load()
			s.ByLink[l] = ls
			s.Messages += int(n)
			s.Bytes += w.outBytes.Load()
		}
		if n := w.inMsgs.Load(); n > 0 {
			l := netmodel.Link{Src: w.m, Dst: 0}
			ls := s.ByLink[l]
			ls.Messages += int(n)
			ls.Bytes += w.inBytes.Load()
			s.ByLink[l] = ls
			s.Messages += int(n)
			s.Bytes += w.inBytes.Load()
		}
	}
	return s
}

// DeltaStats returns the delta-transfer ledger. CoalescedDispatches
// counts dispatch frames that rode the task's first object push instead
// of crossing the wire on their own (see dispatchCarrier).
func (x *Exec) DeltaStats() dist.DeltaStats {
	x.statMu.Lock()
	defer x.statMu.Unlock()
	return x.dstats
}

// FaultStats reports transport-level resilience work: heartbeats,
// retransmits and duplicate drops from each worker session.
func (x *Exec) FaultStats() fault.Stats {
	x.statMu.Lock()
	s := x.fstats
	x.statMu.Unlock()
	for _, w := range x.workerList() {
		if ts, ok := w.conn.(transport.Statser); ok {
			st := ts.Stats()
			s.HeartbeatsSent += int(st.Heartbeats)
			s.MessagesRetried += int(st.Retransmits)
			s.DuplicatesDropped += int(st.DupsDropped)
		}
	}
	return s
}

// ConvertedWords returns how many words crossed byte-order conversion.
func (x *Exec) ConvertedWords() int {
	x.statMu.Lock()
	defer x.statMu.Unlock()
	return x.convWords
}

func (x *Exec) record(ev trace.Event) {
	ev.At = time.Since(x.start)
	x.log.Add(ev)
}

func (x *Exec) fail(err error) {
	x.mu.Lock()
	if x.firstErr == nil {
		x.firstErr = err
	}
	x.mu.Unlock()
}

// failFatal records err and aborts the run: parked handlers and RPC
// waiters unwind via the fatal channel, and epoch waiters are woken so
// they observe the abort.
func (x *Exec) failFatal(err error) {
	x.fail(err)
	x.fatalOnce.Do(func() { close(x.fatal) })
	x.mu.Lock()
	x.cond.Broadcast()
	x.mu.Unlock()
}

func (x *Exec) firstError() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.firstErr
}

// countFrame charges one protocol frame to the network ledger.
func (x *Exec) countFrame(src, dst, bytes int) {
	x.statMu.Lock()
	defer x.statMu.Unlock()
	x.net.Messages++
	x.net.Bytes += int64(bytes)
	if x.net.ByLink == nil {
		x.net.ByLink = map[netmodel.Link]netmodel.LinkStats{}
	}
	l := netmodel.Link{Src: src, Dst: dst}
	ls := x.net.ByLink[l]
	ls.Messages++
	ls.Bytes += int64(bytes)
	x.net.ByLink[l] = ls
}

// send encodes and ships one frame to the worker, charging the ledger.
// The encode buffer is pooled: ownership passes to the transport (or
// back to the pool) inside SendPooled. A send failure is a failure-
// detector verdict on this worker, not on the run: the session is torn
// down and recovery takes over.
func (w *workerLink) send(f *wire.Frame) error {
	buf, err := wire.AppendFrame(transport.GetBuf(), f)
	if err != nil {
		err = fmt.Errorf("live: encode %s for worker %d (%s): %w", wire.TypeName(f.Type), w.m, w.name, err)
		w.x.failFatal(err)
		return err
	}
	w.outMsgs.Add(1)
	w.outBytes.Add(int64(len(buf)))
	if err := transport.SendPooled(w.conn, buf); err != nil {
		err = fmt.Errorf("live: send %s to worker %d (%s): %w", wire.TypeName(f.Type), w.m, w.name, err)
		w.x.workerLost(w, err)
		return fmt.Errorf("%w: %w", errWorkerLost, err)
	}
	return nil
}

// reply sends an RPC reply; errText "" means success.
func (w *workerLink) reply(req uint64, errText string, a, b uint64) {
	w.send(&wire.Frame{Type: wire.TReply, Req: req, Label: errText, A: a, B: b})
}

// rpc sends a frame expecting a TObjData (or other) response routed back
// by request id. It may be called with x.coh held: the worker answers
// pulls from its receive loop without taking coordinator locks.
func (x *Exec) rpc(w *workerLink, f *wire.Frame) (*wire.Frame, error) {
	ch, req, err := x.rpcStart(w, f)
	if err != nil {
		return nil, err
	}
	return x.rpcAwait(w, ch, req, f.Type)
}

// rpcStart ships a request frame and returns the routed reply channel,
// without waiting: the pipelined drain keeps several pulls in flight per
// worker instead of paying one round trip per object.
func (x *Exec) rpcStart(w *workerLink, f *wire.Frame) (chan *wire.Frame, uint64, error) {
	ch := make(chan *wire.Frame, 1)
	x.mu.Lock()
	f.Req = x.nextReq
	x.nextReq++
	x.pending[f.Req] = ch
	x.mu.Unlock()
	if err := w.send(f); err != nil {
		x.mu.Lock()
		delete(x.pending, f.Req)
		x.mu.Unlock()
		return nil, 0, err
	}
	return ch, f.Req, nil
}

// rpcAwait collects the reply for one rpcStart.
func (x *Exec) rpcAwait(w *workerLink, ch chan *wire.Frame, req uint64, typ byte) (*wire.Frame, error) {
	select {
	case r := <-ch:
		return r, nil
	case <-w.dead:
		x.mu.Lock()
		delete(x.pending, req)
		x.mu.Unlock()
		return nil, fmt.Errorf("live: worker %d (%s) died during %s rpc: %w", w.m, w.name, wire.TypeName(typ), errWorkerLost)
	case <-x.fatal:
		return nil, x.firstError()
	}
}

// handshake performs the Hello/Welcome exchange with one peer.
func (x *Exec) handshake(p Peer, m int) (*workerLink, error) {
	msg, err := p.Conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("live: worker %d: waiting for hello: %w", m, err)
	}
	x.countFrame(m, 0, len(msg))
	f, err := wire.Decode(msg)
	if err != nil {
		return nil, fmt.Errorf("live: worker %d: %w", m, err)
	}
	if f.Type != wire.THello {
		return nil, fmt.Errorf("live: worker %d: expected hello, got %s", m, wire.TypeName(f.Type))
	}
	w := &workerLink{
		x:        x,
		m:        m,
		conn:     p.Conn,
		name:     f.Label,
		caps:     map[string]bool{},
		fmt:      format.ByteOrder(f.A),
		group:    f.B,
		slots:    int(f.C),
		dead:     make(chan struct{}),
		recvDone: make(chan struct{}),
	}
	if w.slots <= 0 {
		w.slots = 1 // pre-slot-reporting worker: it runs at least one task
	}
	if w.name == "" {
		w.name = fmt.Sprintf("worker-%d", m)
	}
	for _, c := range strings.Split(f.Aux, ",") {
		if c = strings.TrimSpace(c); c != "" {
			w.caps[c] = true
		}
	}
	if err := w.send(&wire.Frame{Type: wire.TWelcome, A: uint64(m)}); err != nil {
		return nil, err
	}
	return w, nil
}

// Run implements rt.Exec: handshake the workers, execute the main
// program on machine 0, and drive the protocol until every task is done.
func (x *Exec) Run(root func(rt.TC)) error {
	x.mu.Lock()
	if x.started {
		x.mu.Unlock()
		return fmt.Errorf("live: Run called twice on the same executor")
	}
	x.started = true
	x.start = time.Now()
	x.mu.Unlock()
	x.eng.SetClock(func() int64 { return int64(time.Since(x.start)) })

	for _, p := range x.opts.Peers {
		if _, err := x.admit(p.Conn, false); err != nil {
			x.failFatal(err)
			return x.firstError()
		}
	}

	rootT := x.eng.Root()
	x.mu.Lock()
	x.tasks[rootT.ID] = rootT
	x.mu.Unlock()
	tc := &mainCtx{x: x, t: rootT}
	tc.heldSince = time.Now()
	x.record(trace.Event{Kind: trace.TaskScheduled, Task: uint64(rootT.ID), Dst: 0, Label: "main"})
	x.record(trace.Event{Kind: trace.TaskStarted, Task: uint64(rootT.ID), Dst: 0, Label: "main"})
	x.runBody(tc, root)
	x.record(trace.Event{Kind: trace.TaskCompleted, Task: uint64(rootT.ID), Dst: 0})
	if err := x.eng.Complete(rootT); err != nil {
		x.fail(err)
	}
	x.record(trace.Event{Kind: trace.TaskCommitted, Task: uint64(rootT.ID), Dst: 0})
	x.statMu.Lock()
	x.tasksRun++
	x.busy[0] += time.Since(tc.heldSince)
	x.statMu.Unlock()

	// Wait for every dispatched task, unless the run is already doomed.
	done := make(chan struct{})
	go func() { x.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-x.fatal:
		return x.firstError()
	}

	x.drain()
	x.mu.Lock()
	x.closing = true
	x.cond.Broadcast()
	x.mu.Unlock()
	for _, w := range x.workerList() {
		x.mu.Lock()
		st := w.state
		x.mu.Unlock()
		if st == memberDead || st == memberLeft {
			continue // already fenced or already said goodbye
		}
		w.send(&wire.Frame{Type: wire.TBye})
		w.conn.Close()
	}
	return x.firstError()
}

// drain pulls every object whose current version lives on a worker back
// into the coordinator cache, so ObjectValue serves final results. A
// worker death mid-drain parks on the membership epoch and retries
// once recovery has promoted the dead worker's objects.
func (x *Exec) drain() {
	for {
		seen := x.epochNow()
		err := func() error {
			x.coh.Lock()
			defer x.coh.Unlock()
			return x.drainBatchLocked()
		}()
		if err == nil || !errors.Is(err, errWorkerLost) {
			return // success, or a non-membership failure (firstErr set)
		}
		if !x.awaitEpoch(seen) {
			return
		}
	}
}

// drainInflight bounds the pulls the drain keeps outstanding at once.
const drainInflight = 32

// drainBatchLocked syncs every stale worker-owned object into the
// coordinator cache with pipelined pulls: a wave of TPulls ships before
// the first reply is awaited, so the drain pays wire latency once per
// wave rather than once per object. Requires x.coh (held across the
// whole drain; replies are routed by the receive loops, which never take
// it).
func (x *Exec) drainBatchLocked() error {
	var stale []access.ObjectID
	for obj, d := range x.dir {
		if d.owner != 0 && x.cacheVer[obj] != d.version {
			stale = append(stale, obj)
		}
	}
	type pend struct {
		obj access.ObjectID
		d   *objDir
		w   *workerLink
		ch  chan *wire.Frame
		req uint64
	}
	for start := 0; start < len(stale); start += drainInflight {
		end := start + drainInflight
		if end > len(stale) {
			end = len(stale)
		}
		pends := make([]pend, 0, end-start)
		var firstErr error
		for _, obj := range stale[start:end] {
			d := x.dir[obj]
			w, err := x.workerTarget(d.owner)
			if err != nil {
				firstErr = err
				break
			}
			ch, req, err := x.rpcStart(w, &wire.Frame{Type: wire.TPull, Obj: uint64(obj), A: d.version, B: x.cacheVer[obj]})
			if err != nil {
				firstErr = err
				break
			}
			pends = append(pends, pend{obj, d, w, ch, req})
		}
		// Collect the whole wave even after a failure: every issued pull
		// must be awaited (or its pending entry dropped) before retrying.
		for _, p := range pends {
			r, err := x.rpcAwait(p.w, p.ch, p.req, wire.TPull)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				continue
			}
			if firstErr != nil {
				continue // late reply of a doomed wave; the retry re-pulls
			}
			if err := x.applyPullReplyLocked(p.obj, p.d, p.w, r); err != nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return firstErr
		}
	}
	return nil
}

// runBody executes a task body on the coordinator, converting panics
// into program failure.
func (x *Exec) runBody(tc rt.TC, body func(rt.TC)) {
	defer func() {
		if r := recover(); r != nil {
			t := tc.CoreTask()
			x.fail(fmt.Errorf("task %d (%v) panicked: %v", t.ID, t.Seq, r))
		}
	}()
	body(tc)
}

// ObjectValue implements rt.Exec: the drained final value.
func (x *Exec) ObjectValue(obj access.ObjectID) any {
	x.coh.Lock()
	defer x.coh.Unlock()
	return x.vals[obj]
}

// onReady fires when a task's declarations enable: inline tasks signal
// their waiting creator, scheduled tasks are placed and dispatched.
func (x *Exec) onReady(t *core.Task) {
	pl := t.Payload.(*payload)
	x.record(trace.Event{Kind: trace.TaskReady, Task: uint64(t.ID)})
	if pl.inline {
		close(pl.readyCh)
		return
	}
	x.wg.Add(1)
	go x.dispatch(t, pl)
}

// dispatchCarrier coalesces the dispatch control frame onto the task's
// first object push (the same optimization the simulated distributed
// executor applies): the encoded TDispatch rides the push's Aux section,
// so a task whose objects must move anyway starts without a separate
// control frame. Attach-once — the flag survives fetch retries inside
// one placement attempt, so an epoch-parked re-stage never ships the
// dispatch twice. Mutated under x.coh (pushes run inside the coherence
// critical section); read by the owning dispatch goroutine afterwards.
type dispatchCarrier struct {
	m        int    // the placed worker; only its pushes may carry
	frame    []byte // encoded TDispatch
	attached bool
}

// attachTo piggybacks the dispatch onto push frame f bound for machine m
// if this carrier still wants a ride there.
func (c *dispatchCarrier) attachTo(f *wire.Frame, m int) {
	if c == nil || c.attached || m != c.m {
		return
	}
	f.Aux = string(c.frame)
	c.attached = true
}

// marshalDispatchPayload packs a dispatch payload: a pre-grant prefix
// (1-byte count, then 8-byte object + 1-byte mode per grant) followed by
// the kind args. The pre-grants name the immediate non-commuting
// declarations the coordinator stages before the task starts; the worker
// uses them to answer Access locally with a fire-and-forget notify
// instead of a blocking RPC.
func marshalDispatchPayload(decls []access.Decl, kindArgs []byte) []byte {
	grants := decls[:0:0]
	for _, d := range decls {
		if m := d.Mode & access.ReadWrite; m != 0 && !d.Mode.Has(access.Commute) {
			grants = append(grants, access.Decl{Object: d.Object, Mode: m})
		}
	}
	if len(grants) > 255 {
		grants = grants[:255] // 1-byte count; the rest take the slow path
	}
	buf := make([]byte, 0, 1+9*len(grants)+len(kindArgs))
	buf = append(buf, byte(len(grants)))
	for _, d := range grants {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(d.Object))
		buf = append(buf, byte(d.Mode))
	}
	return append(buf, kindArgs...)
}

// unmarshalDispatchPayload is the worker-side inverse.
func unmarshalDispatchPayload(data []byte) (map[access.ObjectID]access.Mode, []byte, error) {
	if len(data) == 0 {
		return nil, nil, nil
	}
	n := int(data[0])
	data = data[1:]
	if 9*n > len(data) {
		return nil, nil, fmt.Errorf("live: dispatch payload declares %d pre-grants in %d bytes", n, len(data))
	}
	var grants map[access.ObjectID]access.Mode
	if n > 0 {
		grants = make(map[access.ObjectID]access.Mode, n)
	}
	for i := 0; i < n; i++ {
		grants[access.ObjectID(binary.LittleEndian.Uint64(data))] = access.Mode(data[8])
		data = data[9:]
	}
	if len(data) == 0 {
		data = nil
	}
	return grants, data, nil
}

// dispatch places one ready task on a worker, stages its declared
// objects there, and ships the dispatch frame — coalesced onto the
// first object push when one goes to the placed worker, standalone
// otherwise. The worker's TaskDone resolves the wg entry. The task is
// started in the engine BEFORE staging: a coalesced dispatch can reach
// the worker mid-stage, and its first accesses must find a Running
// task. When a worker dies under the dispatch, the pl.sent handshake
// decides who re-places the task: the recovery sweep if it claimed the
// orphan first, this goroutine otherwise (parking on the membership
// epoch until the member set changes).
func (x *Exec) dispatch(t *core.Task, pl *payload) {
	for {
		seen := x.epochNow()
		// Locality snapshot for the placement tiebreak: how many of the
		// task's declared objects each machine already holds. Gathered
		// under coh before taking mu (lock order is coh → mu, never the
		// reverse).
		held := make([]int, x.machineCount()+1)
		x.coh.Lock()
		for _, d := range t.ImmediateDecls() {
			if dir := x.dir[d.Object]; dir != nil {
				for c := range dir.copies {
					if c < len(held) {
						held[c]++
					}
				}
			}
		}
		x.coh.Unlock()
		x.mu.Lock()
		w, err := x.place(pl, held)
		if err == nil {
			pl.machine = w.m
			pl.sent = false
			w.pendingTasks++
			x.fleetCharge(w.m)
		}
		x.mu.Unlock()
		if err != nil {
			if errors.Is(err, errWorkerLost) {
				// Every worker is momentarily gone (mid-recovery, or
				// between a drain and a join). Wait for membership to
				// change rather than declaring the program wrong.
				if x.awaitEpoch(seen) {
					continue
				}
			}
			// No worker may legally run this task. Record the violation
			// and run only the lifecycle so the program terminates (same
			// policy as the simulated executor).
			x.record(trace.Event{Kind: trace.Violation, Task: uint64(t.ID), Label: err.Error()})
			x.fail(err)
			pl.skipBody = true
			x.finishSkipped(t, pl)
			return
		}
		x.record(trace.Event{Kind: trace.TaskAssigned, Task: uint64(t.ID), Dst: w.m, Label: pl.opts.Label})
		// Start the task in the engine before staging: a coalesced
		// dispatch reaches the worker with the first push, and the
		// access notifies it triggers must find a Running task.
		if pl.attempt == 0 || t.State() != core.Running {
			if err := x.eng.Start(t); err != nil {
				x.fail(err)
				x.taskFinished(t, pl, 0, false)
				return
			}
		}
		key := pl.bodyKey
		if pl.attempt > 0 && pl.body != nil {
			// Redispatch with a retained closure: the previous attempt
			// may have consumed (or stranded) the table entry; park the
			// closure under a fresh key.
			if pl.bodyKey != 0 && pl.group == 0 {
				x.bodies.drop(pl.bodyKey)
			}
			key = x.bodies.put(pl.body)
			pl.bodyKey = key
		}
		if key != 0 && w.group != pl.group {
			// The worker cannot reach the creator's closure table; it will
			// construct the body from the kind. Release the coordinator-side
			// table entry so it does not leak.
			key = 0
			if pl.group == 0 {
				x.bodies.drop(pl.bodyKey)
			}
		}
		df := &wire.Frame{
			Type: wire.TDispatch, Task: uint64(t.ID), A: key,
			Label: pl.opts.Label, Aux: pl.kind,
			Payload: marshalDispatchPayload(t.ImmediateDecls(), pl.kindArgs),
		}
		enc, err := wire.Encode(df)
		if err != nil {
			x.failFatal(fmt.Errorf("live: encode dispatch of task %d (%s): %w", t.ID, pl.opts.Label, err))
			return
		}
		car := &dispatchCarrier{m: w.m, frame: enc}
		// Mark sent BEFORE staging: the dispatch may ride any push, so
		// from here on the recovery sweep may claim the task if w dies;
		// the mu-guarded mine-check below decides which side re-places
		// it (never both).
		x.mu.Lock()
		pl.sent = true
		x.mu.Unlock()
		ferr := x.fetchAllRetry(t, w.m, car)
		if ferr == nil && !car.attached {
			// Nothing shipped to w during staging (its copies were all
			// current): the dispatch crosses the wire on its own.
			if w.send(df) != nil {
				ferr = fmt.Errorf("dispatch of task %d: %w", t.ID, errWorkerLost)
			}
		}
		if ferr != nil {
			x.mu.Lock()
			mine := pl.sent && pl.machine == w.m
			if mine {
				pl.sent = false
				pl.machine = -1
				pl.attempt++
				w.pendingTasks--
				x.fleetUncharge(w.m)
			}
			x.mu.Unlock()
			if !mine {
				return // the recovery sweep claimed and redispatched it
			}
			if errors.Is(ferr, errWorkerLost) {
				if x.awaitEpoch(seen) {
					continue
				}
				return // run is unwinding
			}
			x.failFatal(ferr)
			return
		}
		x.record(trace.Event{Kind: trace.TaskFetched, Task: uint64(t.ID), Dst: w.m, Label: pl.opts.Label})
		// Started is recorded at dispatch: the span to TaskCompleted includes
		// wire latency and worker-side queueing, which on a live network is
		// real execution overhead rather than measurement error.
		x.record(trace.Event{Kind: trace.TaskScheduled, Task: uint64(t.ID), Dst: w.m, Label: pl.opts.Label})
		x.record(trace.Event{Kind: trace.TaskStarted, Task: uint64(t.ID), Dst: w.m, Label: pl.opts.Label})
		if car.attached {
			x.statMu.Lock()
			x.dstats.CoalescedDispatches++
			x.statMu.Unlock()
			x.record(trace.Event{Kind: trace.DispatchCoalesced, Task: uint64(t.ID), Dst: w.m, Label: pl.opts.Label})
		}
		return
	}
}

// finishSkipped runs the lifecycle of a task whose body may not execute
// anywhere, so dependents unblock and the program terminates.
func (x *Exec) finishSkipped(t *core.Task, pl *payload) {
	if err := x.eng.Start(t); err != nil {
		x.fail(err)
	}
	x.record(trace.Event{Kind: trace.TaskCompleted, Task: uint64(t.ID), Dst: 0})
	if err := x.eng.Complete(t); err != nil {
		x.fail(err)
	}
	x.record(trace.Event{Kind: trace.TaskCommitted, Task: uint64(t.ID), Dst: 0})
	x.taskFinished(t, pl, 0, false)
}

// taskFinished retires a dispatched task's accounting (exactly once).
func (x *Exec) taskFinished(t *core.Task, pl *payload, busy time.Duration, ran bool) {
	x.mu.Lock()
	x.liveUser--
	var drained *workerLink
	if pl.machine > 0 {
		if w := x.workerAtLocked(pl.machine); w != nil {
			w.pendingTasks--
			x.fleetUncharge(w.m)
			if w.state == memberDraining && w.pendingTasks == 0 {
				drained = w
			}
		}
	}
	delete(x.tasks, t.ID)
	x.mu.Unlock()
	if drained != nil {
		// In a goroutine: the drain syncs objects off the worker, and
		// those pulls are routed by the very receive loop that may be
		// running this retirement.
		go x.completeDrain(drained)
	}
	x.statMu.Lock()
	if ran {
		x.tasksRun++
	}
	if pl.machine >= 0 && int(pl.machine) < len(x.busy) {
		x.busy[pl.machine] += busy
	}
	x.retired++
	n := x.retired
	x.statMu.Unlock()
	if h := x.opts.OnTaskDone; h != nil {
		h(n)
	}
	x.wg.Done()
}

// place picks a worker for a ready task: explicit pin first, then
// capability filtering, then least-loaded with a locality tiebreak
// (prefer the worker already holding the task's declared objects, per
// the held snapshot). Called with x.mu held.
func (x *Exec) place(pl *payload, held []int) (*workerLink, error) {
	eligible := func(w *workerLink) error {
		if w.state != memberActive {
			return fmt.Errorf("task %q cannot place on worker %d (%s): member is %v", pl.opts.Label, w.m, w.name, w.state)
		}
		if pl.opts.RequireCap != "" && !w.caps[pl.opts.RequireCap] {
			return fmt.Errorf("task %q requires capability %q, which worker %d (%s) lacks", pl.opts.Label, pl.opts.RequireCap, w.m, w.name)
		}
		if pl.kind == "" && w.group != pl.group {
			return fmt.Errorf("task %q has a closure body from another process and no kind; worker %d (%s) cannot run it", pl.opts.Label, w.m, w.name)
		}
		return nil
	}
	if m, pinned := pl.opts.PinnedMachine(); pinned {
		// Pin indexes machines; machine 0 is the coordinator, which runs
		// only the main program and inlined children.
		if m == 0 {
			return nil, fmt.Errorf("task %q pinned to machine 0, the live coordinator", pl.opts.Label)
		}
		if m > len(x.workers) {
			return nil, fmt.Errorf("task %q pinned to invalid machine %d (have %d workers)", pl.opts.Label, m, len(x.workers))
		}
		w := x.workers[m-1]
		if err := eligible(w); err != nil {
			return nil, err
		}
		return w, nil
	}
	var best *workerLink
	bestHeld := -1
	bestLoad := 0
	var lastErr error
	anyActive := false
	for _, w := range x.workers {
		if w.state == memberActive {
			anyActive = true
		}
		if err := eligible(w); err != nil {
			if w.state == memberActive {
				lastErr = err
			}
			continue
		}
		// A worker admitted after the locality snapshot was taken holds
		// nothing from the snapshot's point of view.
		h := 0
		if w.m < len(held) {
			h = held[w.m]
		}
		load := x.loadOf(w)
		if best == nil || load < bestLoad ||
			(load == bestLoad && h > bestHeld) {
			best, bestHeld, bestLoad = w, h, load
		}
	}
	if best == nil {
		if !anyActive {
			// Transient: every member is dead, draining, or departed.
			// The caller parks on the membership epoch and retries.
			return nil, fmt.Errorf("task %q: no live worker: %w", pl.opts.Label, errWorkerLost)
		}
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("task %q: no eligible worker", pl.opts.Label)
	}
	return best, nil
}

// fetchAllLocked stages every immediately-declared object on machine m
// before the task starts. Commuting declarations are fetched at Access
// time instead, like the simulated executor: another commuting task may
// legitimately hold the object right now.
func (x *Exec) fetchAllLocked(t *core.Task, m int, car *dispatchCarrier) error {
	for _, d := range t.ImmediateDecls() {
		if d.Mode.Has(access.Commute) {
			continue
		}
		if err := x.fetchToLocked(t, d.Object, m, d.Mode.Has(access.Read), d.Mode.Has(access.Write), car); err != nil {
			return err
		}
	}
	return nil
}

// fetchToLocked implements the object-management protocol over the wire:
// migrate on write (invalidating other copies, retaining them as delta
// shadows), replicate on read, ship nothing for write-only grants.
// A non-nil car lets the task's dispatch frame ride the first push to
// the dispatch target instead of crossing the wire on its own.
// Requires x.coh.
func (x *Exec) fetchToLocked(t *core.Task, obj access.ObjectID, m int, read, write bool, car *dispatchCarrier) error {
	d := x.dir[obj]
	if d == nil {
		err := fmt.Errorf("live: object #%d has no directory entry", obj)
		x.fail(err)
		return err
	}
	if m != 0 {
		// Refuse dead or departed targets. The check runs inside the coh
		// critical section, and the recovery sweep also runs under coh
		// after the state flips: every grant to a dying worker either
		// precedes the sweep (and is cleaned up by it) or is refused.
		if _, err := x.workerTarget(m); err != nil {
			return err
		}
		if t != nil {
			// Input logging for crash replay: capture what this task
			// will observe for obj, before the grant mutates the
			// directory.
			if err := x.logInputLocked(t, obj, m, read, write); err != nil {
				return err
			}
		}
	}
	if write {
		if d.owner != m {
			if err := x.syncCacheLocked(obj); err != nil {
				return err
			}
			if m != 0 && !d.copies[m] {
				if read {
					if err := x.pushLocked(t, obj, m, d, car); err != nil {
						return err
					}
					x.record(trace.Event{Kind: trace.ObjectMoved, Task: uint64(t.ID), Object: uint64(obj), Src: d.owner, Dst: m,
						Bytes: format.SizeOf(x.vals[obj]), Label: d.label})
				} else {
					// Write-only: ownership moves, data does not (§5: the
					// task may not read the old contents).
					if err := x.pushZeroLocked(t, obj, m, d, car); err != nil {
						return err
					}
					x.record(trace.Event{Kind: trace.ObjectMoved, Task: uint64(t.ID), Object: uint64(obj), Src: d.owner, Dst: m,
						Bytes: 0, Label: d.label + " (write-only)"})
				}
			} else if m != 0 {
				// The writer already holds a current replica: ownership
				// moves without any data on the wire.
				x.record(trace.Event{Kind: trace.ObjectMoved, Task: uint64(t.ID), Object: uint64(obj), Src: d.owner, Dst: m,
					Bytes: 0, Label: d.label + " (cached)"})
			} else if !read {
				x.vals[obj] = format.ZeroLike(x.vals[obj])
			}
		}
		for c := range d.copies {
			if c != m {
				x.invalidateLocked(c, obj, d)
			}
		}
		d.owner = m
		// Reuse the map (this is the per-write-grant hot path).
		for c := range d.copies {
			delete(d.copies, c)
		}
		d.copies[m] = true
		d.version++
		if m == 0 {
			// The coordinator's store is the authoritative copy.
			x.cacheVer[obj] = d.version
			x.trimHistLocked(obj)
		} else if t != nil {
			// Record the write grant so the recovery sweep can find the
			// last completed writer of a version that died with m.
			x.hist[obj] = append(x.hist[obj], histEntry{ver: d.version, task: t})
		}
		return nil
	}
	if d.copies[m] {
		return nil
	}
	if err := x.syncCacheLocked(obj); err != nil {
		return err
	}
	if m != 0 {
		if err := x.pushLocked(t, obj, m, d, car); err != nil {
			return err
		}
	}
	d.copies[m] = true
	x.record(trace.Event{Kind: trace.ObjectCopied, Task: uint64(t.ID), Object: uint64(obj), Src: d.owner, Dst: m,
		Bytes: format.SizeOf(x.vals[obj]), Label: d.label})
	return nil
}

// syncCacheLocked brings the coordinator's cached value of obj up to the
// directory's current generation, pulling a patch (or full image) from
// the owning worker if the cache is stale. Requires x.coh.
func (x *Exec) syncCacheLocked(obj access.ObjectID) error {
	d := x.dir[obj]
	if d.owner == 0 || x.cacheVer[obj] == d.version {
		return nil
	}
	w, err := x.workerTarget(d.owner)
	if err != nil {
		return err
	}
	r, err := x.rpc(w, &wire.Frame{Type: wire.TPull, Obj: uint64(obj), A: d.version, B: x.cacheVer[obj]})
	if err != nil {
		return err
	}
	return x.applyPullReplyLocked(obj, d, w, r)
}

// applyPullReplyLocked installs one pull reply — patch or full image —
// into the coordinator cache and advances the cached generation to the
// directory's. Requires x.coh, held since the pull was issued.
func (x *Exec) applyPullReplyLocked(obj access.ObjectID, d *objDir, w *workerLink, r *wire.Frame) error {
	have := x.cacheVer[obj]
	x.countObjData(r, w)
	if r.C > 0 {
		base := r.C - 1
		if base != have {
			err := fmt.Errorf("live: pull of object #%d: patch base %d, cache holds %d", obj, base, have)
			x.failFatal(err)
			return err
		}
		patch := r.Payload
		if ord := format.ByteOrder(r.B); ord != x.opts.Format {
			conv, words, cerr := format.ConvertPatch(patch, ord, x.opts.Format)
			if cerr != nil {
				x.failFatal(fmt.Errorf("live: convert patch for object #%d: %w", obj, cerr))
				return cerr
			}
			patch = conv
			x.noteConverted(obj, w.m, 0, words)
		}
		nv, perr := format.ApplyPatch(x.vals[obj], patch, x.opts.Format)
		if perr != nil {
			x.failFatal(fmt.Errorf("live: apply patch for object #%d: %w", obj, perr))
			return perr
		}
		x.vals[obj] = nv
		x.record(trace.Event{Kind: trace.ObjectPatched, Object: uint64(obj), Src: w.m, Dst: 0,
			Bytes: len(r.Payload), Saved: format.WireSize(nv) - len(r.Payload), Label: d.label})
		x.statMu.Lock()
		x.dstats.DeltaTransfers++
		x.dstats.DeltaBytes += int64(len(r.Payload))
		x.dstats.SavedBytes += int64(format.WireSize(nv) - len(r.Payload))
		x.statMu.Unlock()
	} else {
		img := r.Payload
		if ord := format.ByteOrder(r.B); ord != x.opts.Format {
			conv, words, cerr := format.Convert(img, ord, x.opts.Format)
			if cerr != nil {
				x.failFatal(fmt.Errorf("live: convert object #%d: %w", obj, cerr))
				return cerr
			}
			img = conv
			x.noteConverted(obj, w.m, 0, words)
		}
		v, derr := format.Decode(img, x.opts.Format)
		if derr != nil {
			x.failFatal(fmt.Errorf("live: decode object #%d: %w", obj, derr))
			return derr
		}
		x.vals[obj] = v
		x.statMu.Lock()
		x.dstats.FullTransfers++
		x.dstats.FullBytes += int64(len(r.Payload))
		x.statMu.Unlock()
	}
	x.cacheVer[obj] = d.version
	x.trimHistLocked(obj)
	return nil
}

// countObjData records the wire message for a pull reply.
func (x *Exec) countObjData(r *wire.Frame, w *workerLink) {
	x.record(trace.Event{Kind: trace.MessageSent, Object: r.Obj, Src: w.m, Dst: 0,
		Bytes: len(r.Payload), Label: "object-pull"})
}

func (x *Exec) noteConverted(obj access.ObjectID, src, dst, words int) {
	if words <= 0 {
		return
	}
	x.statMu.Lock()
	x.convWords += words
	x.statMu.Unlock()
	x.record(trace.Event{Kind: trace.Converted, Object: uint64(obj), Src: src, Dst: dst, Bytes: words})
}

// pushLocked ships the current value of obj to worker m — as a patch
// against the worker's shadow generation when the diff is worthwhile,
// as a full image otherwise. Requires x.coh with the cache current.
func (x *Exec) pushLocked(t *core.Task, obj access.ObjectID, m int, d *objDir, car *dispatchCarrier) error {
	w, err := x.workerTarget(m)
	if err != nil {
		return err
	}
	gen := x.cacheVer[obj]
	val := x.vals[obj]
	if val == nil {
		err := fmt.Errorf("live: object #%d missing from coordinator cache", obj)
		x.failFatal(err)
		return err
	}
	if sv, ok := x.shadowVer[m][obj]; ok {
		if snap := x.verVals[obj][sv]; snap != nil {
			if patch, _, diffOK := format.Diff(snap.val, val, x.opts.Format); diffOK {
				saved := format.WireSize(val) - len(patch)
				wirePatch := patch
				if w.fmt != x.opts.Format {
					conv, words, err := format.ConvertPatch(patch, x.opts.Format, w.fmt)
					if err != nil {
						x.failFatal(fmt.Errorf("live: convert patch for object #%d: %w", obj, err))
						return err
					}
					wirePatch = conv
					x.noteConverted(obj, 0, m, words)
				}
				x.dropShadowLocked(m, obj)
				pf := &wire.Frame{Type: wire.TObjPatch, Obj: uint64(obj),
					A: gen, B: uint64(w.fmt), C: sv, Payload: wirePatch}
				car.attachTo(pf, m)
				if err := w.send(pf); err != nil {
					return err
				}
				var tid uint64
				if t != nil {
					tid = uint64(t.ID)
				}
				x.record(trace.Event{Kind: trace.MessageSent, Task: tid, Object: uint64(obj), Src: 0, Dst: m, Bytes: len(wirePatch), Label: "object-delta"})
				x.record(trace.Event{Kind: trace.ObjectPatched, Task: tid, Object: uint64(obj), Src: 0, Dst: m, Bytes: len(wirePatch), Saved: saved})
				x.statMu.Lock()
				x.dstats.DeltaTransfers++
				x.dstats.DeltaBytes += int64(len(wirePatch))
				x.dstats.SavedBytes += int64(saved)
				x.statMu.Unlock()
				return nil
			}
		}
	}
	img, err := format.Encode(val, x.opts.Format)
	if err != nil {
		x.failFatal(fmt.Errorf("live: encode object #%d: %w", obj, err))
		return err
	}
	if w.fmt != x.opts.Format {
		conv, words, cerr := format.Convert(img, x.opts.Format, w.fmt)
		if cerr != nil {
			x.failFatal(fmt.Errorf("live: convert object #%d: %w", obj, cerr))
			return cerr
		}
		img = conv
		x.noteConverted(obj, 0, m, words)
	}
	x.dropShadowLocked(m, obj)
	imf := &wire.Frame{Type: wire.TObjImage, Obj: uint64(obj),
		A: gen, B: uint64(w.fmt), Payload: img}
	car.attachTo(imf, m)
	if err := w.send(imf); err != nil {
		return err
	}
	var tid uint64
	if t != nil {
		tid = uint64(t.ID)
	}
	x.record(trace.Event{Kind: trace.MessageSent, Task: tid, Object: uint64(obj), Src: 0, Dst: m, Bytes: len(img), Label: "object"})
	x.statMu.Lock()
	x.dstats.FullTransfers++
	x.dstats.FullBytes += int64(len(img))
	x.statMu.Unlock()
	return nil
}

// pushZeroLocked grants worker m a fresh zeroed buffer for obj: a
// write-only task may not read the old contents, so no data moves.
func (x *Exec) pushZeroLocked(t *core.Task, obj access.ObjectID, m int, d *objDir, car *dispatchCarrier) error {
	w, err := x.workerTarget(m)
	if err != nil {
		return err
	}
	kind, n := kindAndLen(x.vals[obj])
	x.dropShadowLocked(m, obj)
	zf := &wire.Frame{Type: wire.TObjZero, Obj: uint64(obj),
		A: d.version, B: uint64(kind), C: uint64(n)}
	car.attachTo(zf, m)
	if err := w.send(zf); err != nil {
		return err
	}
	x.record(trace.Event{Kind: trace.MessageSent, Task: uint64(t.ID), Object: uint64(obj), Src: 0, Dst: m, Bytes: 0, Label: "ownership"})
	return nil
}

// invalidateLocked discards machine c's copy of obj, retaining it as a
// shadow frozen at the current generation so later re-fetches can
// travel as patches. Requires x.coh with the cache current when c != 0.
func (x *Exec) invalidateLocked(c int, obj access.ObjectID, d *objDir) {
	if c == 0 {
		// The coordinator's cache stays as the patch base for its own
		// re-fetches (cacheVer tracks which generation it froze at).
		x.record(trace.Event{Kind: trace.ObjectInvalidated, Object: uint64(obj), Src: 0, Dst: 0, Label: d.label})
		return
	}
	w, err := x.workerTarget(c)
	if err != nil {
		// The copy holder is dead or departed: nothing to invalidate and
		// no shadow worth retaining (the sweep drops its state).
		x.record(trace.Event{Kind: trace.ObjectInvalidated, Object: uint64(obj), Src: c, Dst: c, Label: d.label + " (member gone)"})
		return
	}
	gen := x.cacheVer[obj]
	vm := x.verVals[obj]
	if vm == nil {
		vm = map[uint64]*snapshot{}
		x.verVals[obj] = vm
	}
	if _, ok := x.shadowVer[c][obj]; ok {
		// Replacing an older shadow: release its snapshot first.
		x.dropShadowLocked(c, obj)
	}
	snap := vm[gen]
	if snap == nil {
		snap = &snapshot{val: format.Clone(x.vals[obj])}
		vm[gen] = snap
	}
	snap.refs++
	x.shadowVer[c][obj] = gen
	w.send(&wire.Frame{Type: wire.TInvalidate, Obj: uint64(obj), A: gen})
	x.record(trace.Event{Kind: trace.ObjectInvalidated, Object: uint64(obj), Src: c, Dst: c, Label: d.label})
}

// dropShadowLocked releases machine m's shadow bookkeeping for obj.
func (x *Exec) dropShadowLocked(m int, obj access.ObjectID) {
	sv, ok := x.shadowVer[m][obj]
	if !ok {
		return
	}
	delete(x.shadowVer[m], obj)
	if vm := x.verVals[obj]; vm != nil {
		if snap := vm[sv]; snap != nil {
			snap.refs--
			if snap.refs <= 0 {
				delete(vm, sv)
			}
		}
		if len(vm) == 0 {
			delete(x.verVals, obj)
		}
	}
}

// kindAndLen describes a value for a zero grant without shipping it.
func kindAndLen(v any) (format.Kind, int) {
	switch s := v.(type) {
	case []byte:
		return format.KindBytes, len(s)
	case []int32:
		return format.KindInt32s, len(s)
	case []int64:
		return format.KindInt64s, len(s)
	case []float32:
		return format.KindFloat32s, len(s)
	case []float64:
		return format.KindFloat64s, len(s)
	}
	return format.KindInvalid, 0
}

// makeZero materializes a zero value for a zero grant.
func makeZero(k format.Kind, n int) any {
	switch k {
	case format.KindBytes:
		return make([]byte, n)
	case format.KindInt32s:
		return make([]int32, n)
	case format.KindInt64s:
		return make([]int64, n)
	case format.KindFloat32s:
		return make([]float32, n)
	case format.KindFloat64s:
		return make([]float64, n)
	}
	return nil
}

// costBits round-trips a float64 cost through a frame scalar.
func costBits(c float64) uint64     { return math.Float64bits(c) }
func costFromBits(b uint64) float64 { return math.Float64frombits(b) }

var _ rt.Exec = (*Exec)(nil)
