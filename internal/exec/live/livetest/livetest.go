// Package livetest is a chaos-test harness for the live executor: it
// builds an in-process cluster and fires a scripted sequence of
// membership events — fail-stop kills, graceful drains, fresh joins —
// at deterministic points in the task stream.
//
// Scripting on the count of retired tasks (rather than wall-clock time)
// makes chaos schedules reproducible: "kill worker 2 after 5 tasks have
// retired" happens at the same logical point in every run, so a failing
// seed replays. The harness is the test half of the executor's fault
// tolerance: every scripted run must still produce results bit-identical
// to the serial oracle, which is exactly the paper's determinism
// guarantee extended to a crashing, elastic machine set.
package livetest

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/exec/live"
	"repro/internal/rt"
	"repro/internal/transport/inproc"
)

// Step is one scripted membership event. Exactly one of Kill, Drain, or
// Join should be set. The step fires when the count of retired
// dispatched tasks first reaches AfterDone.
type Step struct {
	// AfterDone is the retired-task count that triggers the step.
	AfterDone int
	// Kill declares worker machine Kill dead (fail-stop; its session is
	// fenced and its work recovered). 0 = no kill.
	Kill int
	// Drain gracefully retires worker machine Drain. 0 = no drain.
	Drain int
	// Join admits this many fresh workers.
	Join int
}

// Options configure a chaos cluster.
type Options struct {
	// Workers is the initial worker count (required, ≥ 1).
	Workers int
	// Slots is the per-worker concurrency (0 = 1).
	Slots int
	// MaxLiveTasks bounds outstanding tasks (0 = executor default).
	MaxLiveTasks int
	// Script is the membership schedule, fired in AfterDone order.
	Script []Step
	// Trace records execution events.
	Trace bool
}

// Cluster is a live coordinator plus in-process workers under a chaos
// script.
type Cluster struct {
	// X is the coordinator; tests read FaultStats, Members, and object
	// values from it.
	X *live.Exec

	bodies *live.BodyTable
	slots  int

	mu     sync.Mutex
	script []Step // sorted by AfterDone
	cursor int
	next   int // name counter for joined workers
	errs   []error

	// Steps are applied by a dedicated goroutine: OnTaskDone runs inside
	// the executor's protocol loops, which must never block on the
	// coherence lock — and Admit does. The channel preserves firing
	// order; stepWG lets tests wait for every fired step to finish.
	stepCh chan Step
	stepWG sync.WaitGroup
}

// New builds the cluster and connects the initial workers over
// goroutine pipes. The script is sorted by AfterDone; ties fire in the
// order given.
func New(opts Options) (*Cluster, error) {
	if opts.Workers < 1 {
		return nil, fmt.Errorf("livetest: need at least one initial worker")
	}
	c := &Cluster{
		bodies: live.NewBodyTable(),
		slots:  opts.Slots,
		script: append([]Step(nil), opts.Script...),
		next:   opts.Workers,
	}
	sort.SliceStable(c.script, func(i, j int) bool {
		return c.script[i].AfterDone < c.script[j].AfterDone
	})
	c.stepCh = make(chan Step, len(c.script))
	go func() {
		for s := range c.stepCh {
			if err := c.apply(s); err != nil {
				c.mu.Lock()
				c.errs = append(c.errs, err)
				c.mu.Unlock()
			}
			c.stepWG.Done()
		}
	}()
	peers := make([]live.Peer, opts.Workers)
	for i := range peers {
		a, b := inproc.Pipe()
		peers[i] = live.Peer{Conn: a}
		go live.Serve(b, live.WorkerOptions{
			Name:   fmt.Sprintf("chaos-%d", i+1),
			Bodies: c.bodies,
			Slots:  opts.Slots,
		})
	}
	x, err := live.New(live.Options{
		Peers:        peers,
		Bodies:       c.bodies,
		MaxLiveTasks: opts.MaxLiveTasks,
		Trace:        opts.Trace,
		OnTaskDone:   c.onTaskDone,
	})
	if err != nil {
		return nil, err
	}
	c.X = x
	return c, nil
}

// Run executes the program under the script and returns the run error,
// if any. Script-step errors are reported separately by Err.
func (c *Cluster) Run(main func(rt.TC)) error {
	return c.X.Run(main)
}

// Err returns the first error a script step produced, if any.
func (c *Cluster) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

// Fired reports how many script steps have fired.
func (c *Cluster) Fired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cursor
}

// Wait blocks until every step fired so far has finished applying. Call
// after Run before inspecting membership or fault counters.
func (c *Cluster) Wait() {
	c.stepWG.Wait()
}

// onTaskDone is the executor's retirement hook: enqueue every step
// whose threshold has been reached, in order, each at most once. The
// hook runs inside protocol loops, so the steps themselves are applied
// elsewhere.
func (c *Cluster) onTaskDone(done int) {
	for {
		c.mu.Lock()
		if c.cursor >= len(c.script) || c.script[c.cursor].AfterDone > done {
			c.mu.Unlock()
			return
		}
		step := c.script[c.cursor]
		c.cursor++
		c.mu.Unlock()
		c.stepWG.Add(1)
		c.stepCh <- step // buffered to len(script): never blocks
	}
}

// apply executes one step.
func (c *Cluster) apply(s Step) error {
	if s.Kill != 0 {
		if err := c.X.KillWorker(s.Kill); err != nil {
			return fmt.Errorf("livetest: step kill %d: %w", s.Kill, err)
		}
	}
	if s.Drain != 0 {
		if err := c.X.Drain(s.Drain); err != nil {
			return fmt.Errorf("livetest: step drain %d: %w", s.Drain, err)
		}
	}
	for i := 0; i < s.Join; i++ {
		c.mu.Lock()
		c.next++
		name := fmt.Sprintf("chaos-%d", c.next)
		c.mu.Unlock()
		a, b := inproc.Pipe()
		go live.Serve(b, live.WorkerOptions{Name: name, Bodies: c.bodies, Slots: c.slots})
		if _, err := c.X.Admit(a); err != nil {
			return fmt.Errorf("livetest: step join: %w", err)
		}
	}
	return nil
}
