package livetest

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/exec/live/tenant"
)

// TenantStep is one scripted fleet event for a tenant-service chaos
// run. The step fires when the aggregate count of retired tasks across
// every session first reaches AfterDone.
type TenantStep struct {
	// AfterDone is the fleet-wide retired-task count that triggers the
	// step.
	AfterDone int
	// MinPerSession additionally holds the step until every session
	// opened so far has retired at least this many tasks — and, the
	// other half of the guarantee, PARKS each session at this retirement
	// count until the step has been applied. Without the park a fast
	// session (or all of them, on a single-CPU host where sessions
	// serialize) finishes its whole program before the step lands and
	// never observes the event the script placed mid-run. With it,
	// "kill while every session is mid-run" is deterministic: the kill
	// fences while every session still has its remaining program
	// outstanding.
	MinPerSession int
	// Kill fences daemon number Kill (1-based): every session resident
	// there must independently detect the loss and recover. 0 = no kill.
	Kill int
}

// TenantOptions configure a chaos-scripted tenant service.
type TenantOptions struct {
	// Daemons is the shared fleet size (required, ≥ 1).
	Daemons int
	// WorkerSlots is each daemon's shared task capacity (0 = 2).
	WorkerSlots int
	// Profiles declares the tenants and their quotas.
	Profiles []tenant.Profile
	// MaxSessions caps concurrent sessions (0 = unlimited).
	MaxSessions int
	// Script is the fleet-event schedule, fired in AfterDone order.
	Script []TenantStep
}

// TenantCluster is a tenant service under a chaos script. Sessions
// opened through Open feed their task retirements into one aggregate
// counter; scripted kills fire at deterministic points in the combined
// task stream, no matter which session's tasks got there first.
type TenantCluster struct {
	// Svc is the service; tests open extra sessions or read reports
	// directly from it.
	Svc *tenant.Service

	mu      sync.Mutex
	applied *sync.Cond   // signalled when a fired step finishes applying
	script  []TenantStep // sorted by AfterDone
	cursor  int
	total   int
	pending int            // steps fired but not yet applied
	parked  int            // sessions blocked at a MinPerSession gate
	perSess map[uint64]int // session id → retired count (MinPerSession gate)
	killed  map[int]bool   // 1-based daemons the script has fenced
	errs    []error

	// Steps are applied by a dedicated goroutine, exactly as in Cluster:
	// OnTaskDone runs inside a session's protocol loops, which must not
	// block on service or executor locks.
	stepCh chan TenantStep
	stepWG sync.WaitGroup
}

// NewTenant starts the service and arms the script.
func NewTenant(opts TenantOptions) (*TenantCluster, error) {
	if opts.Daemons < 1 {
		return nil, fmt.Errorf("livetest: need at least one daemon")
	}
	svc, err := tenant.NewService(tenant.Options{
		Workers:     opts.Daemons,
		WorkerSlots: opts.WorkerSlots,
		Profiles:    opts.Profiles,
		MaxSessions: opts.MaxSessions,
	})
	if err != nil {
		return nil, err
	}
	c := &TenantCluster{
		Svc:     svc,
		script:  append([]TenantStep(nil), opts.Script...),
		perSess: map[uint64]int{},
		killed:  map[int]bool{},
	}
	c.applied = sync.NewCond(&c.mu)
	sort.SliceStable(c.script, func(i, j int) bool {
		return c.script[i].AfterDone < c.script[j].AfterDone
	})
	c.stepCh = make(chan TenantStep, len(c.script))
	go func() {
		for s := range c.stepCh {
			if err := c.apply(s); err != nil {
				c.mu.Lock()
				c.errs = append(c.errs, err)
				c.mu.Unlock()
			}
			c.mu.Lock()
			c.pending--
			c.applied.Broadcast()
			c.mu.Unlock()
			c.stepWG.Done()
		}
	}()
	return c, nil
}

// Open admits a session whose task retirements count toward the
// script's aggregate thresholds.
func (c *TenantCluster) Open(tenantName string) (*tenant.Session, error) {
	// Each session reports its own running total; fold the deltas into
	// the fleet aggregate. The session id isn't known until OpenSessionCfg
	// returns, so bind it through a pointer the hook closes over.
	var lmu sync.Mutex
	last := 0
	var sid uint64
	s, err := c.Svc.OpenSessionCfg(tenant.SessionConfig{
		Tenant: tenantName,
		OnTaskDone: func(done int) {
			lmu.Lock()
			delta := done - last
			if delta > 0 {
				last = done
			}
			id := sid
			lmu.Unlock()
			if delta > 0 {
				c.bump(id, done, delta)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	lmu.Lock()
	sid = s.ID()
	lmu.Unlock()
	c.mu.Lock()
	c.perSess[s.ID()] = 0
	c.mu.Unlock()
	return s, nil
}

// bump advances the counters, enqueues every step whose thresholds have
// been reached (in order, each at most once), and enforces the
// MinPerSession park: a session that has reached the next unfired
// step's per-session threshold waits here — mid-run, with the rest of
// its program outstanding — until that step has fired AND been applied.
// The last session to reach the gate is what fires the step, so the
// event provably lands while every session is resident. Blocking inside
// OnTaskDone is safe: apply() never needs a session's protocol loops to
// make progress (KillWorker is a fence — channel closes, no
// round-trips).
func (c *TenantCluster) bump(sid uint64, done, delta int) {
	c.mu.Lock()
	c.total += delta
	if sid != 0 {
		c.perSess[sid] = done
	}
	c.fireLocked()
	for c.gateLocked(done) {
		c.parked++
		c.fireLocked() // this session may be the last one the gate waited on
		c.applied.Wait()
		c.parked--
	}
	c.mu.Unlock()
}

// fireLocked enqueues every due step. A step with a MinPerSession gate
// fires once every session has reached the gate and either the
// aggregate threshold is met or every session is parked at the gate
// (the aggregate can never advance past a full park, so waiting longer
// would deadlock the script). Requires c.mu.
func (c *TenantCluster) fireLocked() {
	for c.cursor < len(c.script) {
		st := c.script[c.cursor]
		if st.MinPerSession > 0 {
			for _, n := range c.perSess {
				if n < st.MinPerSession {
					return
				}
			}
		}
		if c.total < st.AfterDone && !(st.MinPerSession > 0 && c.parked == len(c.perSess)) {
			return
		}
		c.cursor++
		c.pending++
		c.stepWG.Add(1)
		c.stepCh <- st // buffered to len(script): never blocks
	}
}

// gateLocked reports whether the session that just retired its done-th
// task must park: a fired step is still being applied, or the next
// unfired step has a MinPerSession gate this session has reached.
// Requires c.mu.
func (c *TenantCluster) gateLocked(done int) bool {
	if c.pending > 0 {
		return true
	}
	if c.cursor < len(c.script) {
		if m := c.script[c.cursor].MinPerSession; m > 0 && done >= m {
			return true
		}
	}
	return false
}

// apply executes one step.
func (c *TenantCluster) apply(s TenantStep) error {
	if s.Kill != 0 {
		if err := c.Svc.KillWorker(s.Kill - 1); err != nil {
			return fmt.Errorf("livetest: step kill daemon %d: %w", s.Kill, err)
		}
		c.mu.Lock()
		c.killed[s.Kill] = true
		c.mu.Unlock()
	}
	return nil
}

// Wait blocks until every step fired so far has finished applying.
func (c *TenantCluster) Wait() { c.stepWG.Wait() }

// Err returns the first error a script step produced, if any.
func (c *TenantCluster) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.errs) > 0 {
		return c.errs[0]
	}
	return nil
}

// Fired reports how many script steps have fired.
func (c *TenantCluster) Fired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cursor
}

// Killed reports whether the script fenced daemon d (1-based). Killed
// daemons keep the slot tokens their lost tasks held — their ledgers are
// exempt from the held-drains-to-zero check.
func (c *TenantCluster) Killed(d int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.killed[d]
}

// Done reports the aggregate retired-task count so far.
func (c *TenantCluster) Done() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}
