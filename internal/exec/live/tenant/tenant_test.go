package tenant_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/access"
	"repro/internal/exec/live/tenant"
	"repro/internal/rt"
)

// runSum drives one small Jade program on a session: alloc nObjs
// counters, spawn nTasks tasks that each add (task index + 1) to every
// counter, and return the final values. The serial oracle is
// nTasks*(nTasks+1)/2 per counter.
func runSum(t *testing.T, s *tenant.Session, nObjs, nTasks int) []int64 {
	t.Helper()
	ids := make([]access.ObjectID, nObjs)
	err := s.Run(func(tc rt.TC) {
		for i := range ids {
			id, err := tc.Alloc([]int64{0}, fmt.Sprintf("ctr%d", i))
			if err != nil {
				panic(err)
			}
			ids[i] = id
		}
		for i := 0; i < nTasks; i++ {
			i := i
			decls := make([]access.Decl, len(ids))
			for k, id := range ids {
				decls[k] = access.Decl{Object: id, Mode: access.ReadWrite}
			}
			if err := tc.Create(decls, rt.TaskOpts{Label: fmt.Sprintf("add%d", i)}, func(ctc rt.TC) {
				for _, id := range ids {
					v, err := ctc.Access(id, access.ReadWrite)
					if err != nil {
						panic(err)
					}
					v.([]int64)[0] += int64(i + 1)
				}
			}); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatalf("session %d run: %v", s.ID(), err)
	}
	out := make([]int64, nObjs)
	for i, id := range ids {
		out[i] = s.X.ObjectValue(id).([]int64)[0]
	}
	return out
}

// TestServiceSessionsConcurrent: several sessions across two tenants run
// concurrently over one shared fleet, each matching its serial oracle,
// each confined to its own object-id range.
func TestServiceSessionsConcurrent(t *testing.T) {
	svc, err := tenant.NewService(tenant.Options{
		Workers:     2,
		WorkerSlots: 2,
		Profiles: []tenant.Profile{
			{Name: "alpha", SlotsPerWorker: 1},
			{Name: "beta", SlotsPerWorker: 2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const nSessions = 6
	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		ten := "alpha"
		if i%2 == 1 {
			ten = "beta"
		}
		s, err := svc.OpenSession(ten)
		if err != nil {
			t.Fatal(err)
		}
		if s.Tenant() != ten {
			t.Fatalf("session tenant = %q, want %q", s.Tenant(), ten)
		}
		if want := access.ObjectID(s.ID()) << 32; s.ObjectBase() != want {
			t.Fatalf("session %d base = %#x, want %#x", s.ID(), s.ObjectBase(), want)
		}
		wg.Add(1)
		go func(s *tenant.Session, n int) {
			defer wg.Done()
			defer s.Close()
			got := runSum(t, s, 2, n)
			want := int64(n * (n + 1) / 2)
			for k, v := range got {
				if v != want {
					t.Errorf("session %d ctr%d = %d, want %d", s.ID(), k, v, want)
				}
			}
			for _, id := range s.X.ObjectIDs() {
				if id < s.ObjectBase() || id >= s.ObjectBase()+(1<<32) {
					t.Errorf("session %d tracks foreign object %#x", s.ID(), id)
				}
			}
		}(s, 3+i)
	}
	wg.Wait()

	rep := svc.Report()
	if rep.SessionsAdmitted != nSessions || rep.SessionsClosed != nSessions || rep.Active != 0 {
		t.Fatalf("report admitted/closed/active = %d/%d/%d, want %d/%d/0",
			rep.SessionsAdmitted, rep.SessionsClosed, rep.Active, nSessions, nSessions)
	}
	wantTasks := nSessions // each session's main program counts as one task
	for i := 0; i < nSessions; i++ {
		wantTasks += 3 + i
	}
	if rep.TasksRun != wantTasks {
		t.Fatalf("report TasksRun = %d, want %d", rep.TasksRun, wantTasks)
	}
	if a, b := rep.Tenants["alpha"], rep.Tenants["beta"]; a.Sessions != 3 || b.Sessions != 3 {
		t.Fatalf("per-tenant sessions = %d/%d, want 3/3", a.Sessions, b.Sessions)
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("report has %d workers, want 2", len(rep.Workers))
	}
	for _, w := range rep.Workers {
		if w.Ledger.Violation != "" {
			t.Fatalf("worker %s slot ledger violation: %s", w.Name, w.Ledger.Violation)
		}
		if w.Ledger.Held != 0 {
			t.Fatalf("worker %s still holds %d slots after all sessions closed", w.Name, w.Ledger.Held)
		}
		if u, ok := w.Ledger.PerTenant["alpha"]; ok && u.Peak > 1 {
			t.Fatalf("worker %s: tenant alpha peak %d exceeds cap 1", w.Name, u.Peak)
		}
	}
}

// TestServiceAdmissionBlocks: at MaxSessions the next OpenSession call
// queues until a running session closes; PeakActive never exceeds the
// cap.
func TestServiceAdmissionBlocks(t *testing.T) {
	svc, err := tenant.NewService(tenant.Options{Workers: 1, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	first, err := svc.OpenSession("a")
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan *tenant.Session)
	go func() {
		s, err := svc.OpenSession("a")
		if err != nil {
			t.Error(err)
			close(admitted)
			return
		}
		admitted <- s
	}()
	select {
	case <-admitted:
		t.Fatal("second session admitted past MaxSessions=1")
	case <-time.After(50 * time.Millisecond):
	}
	first.Close()
	select {
	case s := <-admitted:
		if s != nil {
			s.Close()
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued session never admitted after close")
	}
	rep := svc.Report()
	if rep.PeakActive > 1 {
		t.Fatalf("PeakActive = %d, want ≤ 1", rep.PeakActive)
	}
	if rep.SessionsQueued != 1 {
		t.Fatalf("SessionsQueued = %d, want 1", rep.SessionsQueued)
	}
}

// TestServiceAdmissionRejects: with the wait queue full, OpenSession
// load-sheds with ErrBusy instead of blocking.
func TestServiceAdmissionRejects(t *testing.T) {
	svc, err := tenant.NewService(tenant.Options{Workers: 1, MaxSessions: 1, MaxQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	first, err := svc.OpenSession("a")
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan *tenant.Session)
	go func() {
		s, _ := svc.OpenSession("a")
		queued <- s
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Report().SessionsQueued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second OpenSession never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := svc.OpenSession("a"); !errors.Is(err, tenant.ErrBusy) {
		t.Fatalf("third OpenSession error = %v, want ErrBusy", err)
	}
	first.Close()
	if s := <-queued; s != nil {
		s.Close()
	}
	if rep := svc.Report(); rep.SessionsRejected != 1 {
		t.Fatalf("SessionsRejected = %d, want 1", rep.SessionsRejected)
	}
}

// TestServicePerTenantSessionCap: one tenant at its session cap blocks
// only itself — another tenant's sessions keep flowing.
func TestServicePerTenantSessionCap(t *testing.T) {
	svc, err := tenant.NewService(tenant.Options{
		Workers:  1,
		Profiles: []tenant.Profile{{Name: "small", MaxSessions: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	held, err := svc.OpenSession("small")
	if err != nil {
		t.Fatal(err)
	}
	admitted := make(chan struct{})
	go func() {
		s, err := svc.OpenSession("small")
		if err == nil {
			s.Close()
		}
		close(admitted)
	}()
	select {
	case <-admitted:
		t.Fatal("tenant admitted past its MaxSessions=1")
	case <-time.After(50 * time.Millisecond):
	}
	other, err := svc.OpenSession("big") // undeclared tenant: no cap
	if err != nil {
		t.Fatalf("other tenant blocked by small's cap: %v", err)
	}
	other.Close()
	held.Close()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("queued same-tenant session never admitted")
	}
}

// TestServiceTCP: the same multi-session flow over real loopback
// sockets.
func TestServiceTCP(t *testing.T) {
	svc, err := tenant.NewService(tenant.Options{Workers: 2, Transport: "tcp", WorkerSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		s, err := svc.OpenSession(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *tenant.Session, n int) {
			defer wg.Done()
			defer s.Close()
			got := runSum(t, s, 1, n)
			if want := int64(n * (n + 1) / 2); got[0] != want {
				t.Errorf("session %d sum = %d, want %d", s.ID(), got[0], want)
			}
		}(s, 4+i)
	}
	wg.Wait()
	if rep := svc.Report(); rep.SessionsClosed != 3 || rep.TasksRun != 3+4+5+6 {
		t.Fatalf("closed/tasks = %d/%d, want 3/18 (mains included)", rep.SessionsClosed, rep.TasksRun)
	}
}

// TestServiceCloseUnblocksQueue: Close wakes queued OpenSession callers
// with ErrClosed instead of leaving them parked forever.
func TestServiceCloseUnblocksQueue(t *testing.T) {
	svc, err := tenant.NewService(tenant.Options{Workers: 1, MaxSessions: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, err := svc.OpenSession("a")
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error)
	go func() {
		_, err := svc.OpenSession("a")
		errc <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Report().SessionsQueued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("second OpenSession never queued")
		}
		time.Sleep(time.Millisecond)
	}
	svc.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, tenant.ErrClosed) {
			t.Fatalf("queued OpenSession error = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued OpenSession not released by Close")
	}
	_ = first
}
