package tenant

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/access"
	"repro/internal/exec/live"
	"repro/internal/rt"
	"repro/internal/transport"
)

// State is a session's lifecycle position: open → running → drained →
// closed. Running brackets an executor Run; drained means the program
// finished (or the session began closing) and no further Run is
// admitted; closed means the registry slot has been released.
type State int

const (
	// StateOpen: admitted, no program running.
	StateOpen State = iota
	// StateRunning: an executor Run is in flight.
	StateRunning
	// StateDrained: finished or closing; new Runs are refused.
	StateDrained
	// StateClosed: resources released, registry slot freed.
	StateClosed
)

func (s State) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateRunning:
		return "running"
	case StateDrained:
		return "drained"
	case StateClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrSessionClosed is returned by BeginRun on a drained or closed
// session.
var ErrSessionClosed = errors.New("tenant: session drained or closed")

// Session is one admitted Jade program: its own executor (dependency
// engine, directory, shadows, trace) over virtual connections to the
// shared fleet, with all object ids confined to [Base, Base+2³²).
type Session struct {
	id     uint64
	tenant string
	svc    *Service
	base   access.ObjectID
	conns  []transport.Conn

	// X is the session's private executor. Callers register bodies and
	// drive programs through it exactly as with a dedicated live cluster.
	X *live.Exec

	mu        sync.Mutex
	state     State
	closeOnce sync.Once
}

// ID returns the session id (also the high 32 bits of its object ids).
func (s *Session) ID() uint64 { return s.id }

// Tenant returns the owning tenant's name.
func (s *Session) Tenant() string { return s.tenant }

// ObjectBase returns the first object id of the session's private range.
func (s *Session) ObjectBase() access.ObjectID { return s.base }

// State returns the lifecycle state.
func (s *Session) State() State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// BeginRun moves open → running; callers that drive s.X.Run directly
// (rather than through Run) bracket it with BeginRun/EndRun so the
// lifecycle and the service's reports stay truthful.
func (s *Session) BeginRun() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state >= StateDrained {
		return ErrSessionClosed
	}
	s.state = StateRunning
	return nil
}

// EndRun moves running → open (ready for another program).
func (s *Session) EndRun() {
	s.mu.Lock()
	if s.state == StateRunning {
		s.state = StateOpen
	}
	s.mu.Unlock()
}

// Run executes one root task to completion on the session's executor.
func (s *Session) Run(root func(rt.TC)) error {
	if err := s.BeginRun(); err != nil {
		return err
	}
	defer s.EndRun()
	return s.X.Run(root)
}

// Close drains the session and frees its registry slot, waking queued
// OpenSession callers. Idempotent; safe with Runs in flight on other
// goroutines (their frames stop at the closed virtual connections and
// the executor surfaces the loss).
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.state = StateDrained
		s.mu.Unlock()
		for _, c := range s.conns {
			c.Close()
		}
		s.svc.retire(s)
		s.mu.Lock()
		s.state = StateClosed
		s.mu.Unlock()
	})
	return nil
}
