package tenant

import (
	"sort"

	"repro/internal/exec/live"
)

// ServiceReport is the fleet-level aggregate: admission counters, the
// per-tenant rollup, and each in-process daemon's slot ledger.
type ServiceReport struct {
	// SessionsOpened counts OpenSession calls (admitted + rejected).
	SessionsOpened int
	// SessionsAdmitted counts sessions that got past admission.
	SessionsAdmitted int
	// SessionsQueued counts OpenSession calls that had to wait.
	SessionsQueued int
	// SessionsRejected counts ErrBusy load-sheds (queue full).
	SessionsRejected int
	// Active is the current admitted-session count; PeakActive its
	// high-water mark (the admission-control exactness check: it must
	// never exceed Options.MaxSessions).
	Active     int
	PeakActive int
	// SessionsClosed counts retired sessions.
	SessionsClosed int

	// TasksRun / Frames / Bytes aggregate every session, active and
	// closed. TasksRun counts each session's main program as one task,
	// matching the executor's own counter.
	TasksRun int
	Frames   int
	Bytes    int64
	// CrashesDetected sums each session's independent loss detections.
	CrashesDetected int

	// Tenants breaks the same totals down per tenant.
	Tenants map[string]TenantReport
	// Workers is one entry per in-process daemon: its shared slot
	// ledger with per-tenant holds, peaks, and any invariant violation.
	Workers []WorkerReport
}

// TenantReport is one tenant's slice of the fleet.
type TenantReport struct {
	Profile  Profile
	Active   int
	Sessions int // lifetime sessions (active + closed)
	TasksRun int
	Frames   int
	Bytes    int64
	Crashes  int
}

// WorkerReport pairs a daemon's name with its slot ledger.
type WorkerReport struct {
	Name   string
	Ledger live.SlotLedger
}

// Report snapshots the service. Active sessions contribute their
// current counters; closed sessions contribute the totals captured at
// retirement.
func (s *Service) Report() ServiceReport {
	s.mu.Lock()
	r := ServiceReport{
		SessionsOpened:   s.counters.opened,
		SessionsAdmitted: s.counters.admitted,
		SessionsQueued:   s.counters.queued,
		SessionsRejected: s.counters.rejected,
		Active:           len(s.active),
		PeakActive:       s.counters.peakActive,
		SessionsClosed:   s.counters.closedSessions,
		Tenants:          map[string]TenantReport{},
	}
	for name, tot := range s.retired {
		tr := r.Tenants[name]
		tr.Profile = s.profileFor(name)
		tr.Sessions += tot.sessions
		tr.TasksRun += tot.tasksRun
		tr.Frames += tot.frames
		tr.Bytes += tot.bytes
		tr.Crashes += tot.crashes
		r.Tenants[name] = tr
	}
	resident := make([]*Session, 0, len(s.active))
	for _, sess := range s.active {
		resident = append(resident, sess)
	}
	servers := append([]*live.MultiServer(nil), s.servers...)
	s.mu.Unlock()

	// Executor stats take the executor's own locks; gather them outside
	// s.mu so a busy session cannot stall OpenSession.
	for _, sess := range resident {
		cnt := sess.X.Counters()
		net := sess.X.NetStats()
		fst := sess.X.FaultStats()
		tr := r.Tenants[sess.tenant]
		if tr.Profile.Name == "" {
			tr.Profile = s.profileFor(sess.tenant)
		}
		tr.Active++
		tr.Sessions++
		tr.TasksRun += cnt.TasksRun
		tr.Frames += net.Messages
		tr.Bytes += net.Bytes
		tr.Crashes += fst.CrashesDetected
		r.Tenants[sess.tenant] = tr
	}
	for _, tr := range r.Tenants {
		r.TasksRun += tr.TasksRun
		r.Frames += tr.Frames
		r.Bytes += tr.Bytes
		r.CrashesDetected += tr.Crashes
	}
	for i, ms := range servers {
		name := "daemon"
		if i < len(s.daemons) {
			name = s.daemons[i].name
		}
		r.Workers = append(r.Workers, WorkerReport{Name: name, Ledger: ms.Ledger()})
	}
	sort.Slice(r.Workers, func(i, j int) bool { return r.Workers[i].Name < r.Workers[j].Name })
	return r
}
