package tenant

import (
	"sort"

	"repro/internal/exec/live"
	"repro/internal/obs"
)

// ServiceReport is the fleet-level aggregate: admission counters, the
// per-tenant rollup, and each in-process daemon's slot ledger.
type ServiceReport struct {
	// SessionsOpened counts OpenSession calls (admitted + rejected).
	SessionsOpened int
	// SessionsAdmitted counts sessions that got past admission.
	SessionsAdmitted int
	// SessionsQueued counts OpenSession calls that had to wait.
	SessionsQueued int
	// SessionsRejected counts ErrBusy load-sheds (queue full).
	SessionsRejected int
	// Active is the current admitted-session count; PeakActive its
	// high-water mark (the admission-control exactness check: it must
	// never exceed Options.MaxSessions).
	Active     int
	PeakActive int
	// SessionsClosed counts retired sessions.
	SessionsClosed int

	// TasksRun / Frames / Bytes aggregate every session, active and
	// closed. TasksRun counts each session's main program as one task,
	// matching the executor's own counter.
	TasksRun int
	Frames   int
	Bytes    int64
	// CrashesDetected sums each session's independent loss detections.
	CrashesDetected int

	// Tenants breaks the same totals down per tenant.
	Tenants map[string]TenantReport
	// Workers is one entry per in-process daemon: its shared slot
	// ledger with per-tenant holds, peaks, and any invariant violation.
	Workers []WorkerReport
	// Latency is the fleet-wide per-task-label latency rollup: every
	// tenant's sessions merged, active and closed, sorted by label.
	Latency []obs.LabelLatency
}

// TenantReport is one tenant's slice of the fleet.
type TenantReport struct {
	Profile  Profile
	Active   int
	Sessions int // lifetime sessions (active + closed)
	TasksRun int
	Frames   int
	Bytes    int64
	Crashes  int
	// Latency is the tenant's per-task-label latency rollup, merged
	// across its sessions (active ones contribute their current ring
	// window; closed ones the snapshot captured at retirement).
	Latency []obs.LabelLatency
}

// mergeLatency folds per-label snapshots into an accumulator map.
func mergeLatency(dst map[string]obs.LabelLatency, src []obs.LabelLatency) {
	for _, ll := range src {
		cur := dst[ll.Label]
		cur.Label = ll.Label
		cur.Total = cur.Total.Merge(ll.Total)
		cur.Exec = cur.Exec.Merge(ll.Exec)
		dst[ll.Label] = cur
	}
}

// sortedLatency flattens an accumulator map deterministically.
func sortedLatency(m map[string]obs.LabelLatency) []obs.LabelLatency {
	if len(m) == 0 {
		return nil
	}
	out := make([]obs.LabelLatency, 0, len(m))
	for _, ll := range m {
		out = append(out, ll)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// WorkerReport pairs a daemon's name with its slot ledger.
type WorkerReport struct {
	Name   string
	Ledger live.SlotLedger
}

// Report snapshots the service. Active sessions contribute their
// current counters; closed sessions contribute the totals captured at
// retirement.
func (s *Service) Report() ServiceReport {
	s.mu.Lock()
	r := ServiceReport{
		SessionsOpened:   s.counters.opened,
		SessionsAdmitted: s.counters.admitted,
		SessionsQueued:   s.counters.queued,
		SessionsRejected: s.counters.rejected,
		Active:           len(s.active),
		PeakActive:       s.counters.peakActive,
		SessionsClosed:   s.counters.closedSessions,
		Tenants:          map[string]TenantReport{},
	}
	latAcc := map[string]map[string]obs.LabelLatency{}
	for name, tot := range s.retired {
		tr := r.Tenants[name]
		tr.Profile = s.profileFor(name)
		tr.Sessions += tot.sessions
		tr.TasksRun += tot.tasksRun
		tr.Frames += tot.frames
		tr.Bytes += tot.bytes
		tr.Crashes += tot.crashes
		r.Tenants[name] = tr
		if len(tot.latency) > 0 {
			acc := map[string]obs.LabelLatency{}
			for k, v := range tot.latency {
				acc[k] = v
			}
			latAcc[name] = acc
		}
	}
	resident := make([]*Session, 0, len(s.active))
	for _, sess := range s.active {
		resident = append(resident, sess)
	}
	servers := append([]*live.MultiServer(nil), s.servers...)
	s.mu.Unlock()

	// Executor stats take the executor's own locks; gather them outside
	// s.mu so a busy session cannot stall OpenSession.
	for _, sess := range resident {
		cnt := sess.X.Counters()
		net := sess.X.NetStats()
		fst := sess.X.FaultStats()
		tr := r.Tenants[sess.tenant]
		if tr.Profile.Name == "" {
			tr.Profile = s.profileFor(sess.tenant)
		}
		tr.Active++
		tr.Sessions++
		tr.TasksRun += cnt.TasksRun
		tr.Frames += net.Messages
		tr.Bytes += net.Bytes
		tr.Crashes += fst.CrashesDetected
		r.Tenants[sess.tenant] = tr
		if lat := obs.LatencyByLabel(sess.X.Log().Events()); len(lat) > 0 {
			if latAcc[sess.tenant] == nil {
				latAcc[sess.tenant] = map[string]obs.LabelLatency{}
			}
			mergeLatency(latAcc[sess.tenant], lat)
		}
	}
	fleetLat := map[string]obs.LabelLatency{}
	for name, acc := range latAcc {
		tr := r.Tenants[name]
		tr.Latency = sortedLatency(acc)
		r.Tenants[name] = tr
		mergeLatency(fleetLat, tr.Latency)
	}
	r.Latency = sortedLatency(fleetLat)
	for _, tr := range r.Tenants {
		r.TasksRun += tr.TasksRun
		r.Frames += tr.Frames
		r.Bytes += tr.Bytes
		r.CrashesDetected += tr.Crashes
	}
	for i, ms := range servers {
		name := "daemon"
		if i < len(s.daemons) {
			name = s.daemons[i].name
		}
		r.Workers = append(r.Workers, WorkerReport{Name: name, Ledger: ms.Ledger()})
	}
	sort.Slice(r.Workers, func(i, j int) bool { return r.Workers[i].Name < r.Workers[j].Name })
	return r
}
