// Package tenant is the multi-tenant session service: many independent
// Jade programs multiplexed over one shared worker fleet (DESIGN.md
// §4.15). It is the layer that turns the live executor — one main
// program, one coordinator, one set of workers — into a backend.
//
// Shape: the service owns N worker daemons, each a live.MultiServer on
// the far side of one physical connection wrapped in a session mux
// (internal/transport/mux). Each admitted session gets its own
// live.Exec — its own dependency engine, object directory, delta
// shadows, and trace ring — driving virtual connections to every
// daemon. Isolation is structural (per-session executors and worker
// stores, disjoint object-id ranges of 2³² per session) and enforced on
// the wire (frames route by session id; a fenced session's late frames
// are dropped).
//
// The SessionManager half follows the profiles/active registry shape of
// codenerd's ShardManager: declared tenant profiles on one side, live
// sessions on the other, with admission control between them — a
// fleet-wide concurrent-session cap, a bounded wait queue beyond it
// (OpenSession blocks as backpressure, then rejects), and per-tenant
// caps on sessions and worker slots.
package tenant

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/access"
	"repro/internal/exec/live"
	"repro/internal/obs"
	"repro/internal/transport"
	"repro/internal/transport/inproc"
	"repro/internal/transport/mux"
	"repro/internal/transport/tcp"
)

// ErrBusy is returned by OpenSession when the service is at its
// concurrent-session cap AND the wait queue is full: the backpressure
// signal callers turn into load shedding.
var ErrBusy = errors.New("tenant: service at capacity and wait queue full")

// ErrClosed is returned by OpenSession after Close.
var ErrClosed = errors.New("tenant: service closed")

// Profile declares one tenant's resource envelope.
type Profile struct {
	// Name identifies the tenant; sessions opened under it share quotas.
	Name string
	// SlotsPerWorker caps how many task slots the tenant's sessions may
	// hold concurrently on each worker daemon (0 = uncapped).
	SlotsPerWorker int
	// MaxSessions caps the tenant's concurrently-admitted sessions
	// (0 = no per-tenant cap; the fleet-wide cap still applies).
	MaxSessions int
}

// Options configure the service.
type Options struct {
	// Workers is the daemon fleet size (default 4).
	Workers int
	// Transport is "inproc" (default) or "tcp".
	Transport string
	// Listen is the tcp listen address (default "127.0.0.1:0").
	Listen string
	// AwaitExternal makes the tcp service wait for this many external
	// daemons (cmd/jadeworker -multi) on top of the in-process ones.
	AwaitExternal int
	// WorkerSlots is each daemon's total concurrent task capacity,
	// shared across all resident sessions (default 2).
	WorkerSlots int
	// MaxSessions caps concurrently-admitted sessions fleet-wide
	// (0 = unlimited).
	MaxSessions int
	// MaxQueue bounds OpenSession callers blocked waiting for admission
	// (default 64). Beyond it, OpenSession fails fast with ErrBusy.
	MaxQueue int
	// Profiles declares the known tenants. A session under an undeclared
	// tenant gets an implicit profile with DefaultSlotsPerWorker.
	Profiles []Profile
	// DefaultSlotsPerWorker is the implicit per-worker slot quota for
	// undeclared tenants (0 = uncapped).
	DefaultSlotsPerWorker int
	// MaxLiveTasks is passed through to each session's executor.
	MaxLiveTasks int
	// Trace enables full event recording on every session.
	Trace bool
	// TraceRingSize overrides each session's always-on event ring
	// capacity (0 = the executor default; ignored when Trace is on).
	TraceRingSize int
}

// daemon is the service's handle on one worker machine.
type daemon struct {
	name string
	mx   *mux.Mux
	dead atomic.Bool
}

// Service multiplexes sessions over the daemon fleet.
type Service struct {
	opts    Options
	bodies  *live.BodyTable
	daemons []*daemon
	servers []*live.MultiServer // in-process daemons, for ledger inspection
	loads   []atomic.Int64      // per daemon: fleet-wide outstanding tasks
	ln      transport.Listener  // tcp only

	mu        sync.Mutex
	cond      *sync.Cond
	profiles  map[string]Profile // declared tenants (ShardManager's "profiles")
	active    map[uint64]*Session // admitted sessions ("active")
	perTenant map[string]int      // admitted sessions per tenant
	admitting int                 // admitted but not yet in active
	queued    int
	nextSess  uint64
	closed    bool
	counters  counters
	retired   map[string]tenantTotals // accumulated from closed sessions
}

type counters struct {
	opened, admitted, queued, rejected, closedSessions, peakActive int
}

type tenantTotals struct {
	sessions int
	tasksRun int
	frames   int
	bytes    int64
	crashes  int
	// latency is the per-task-label latency rollup captured from each
	// session's event ring at retirement, merged across sessions.
	latency map[string]obs.LabelLatency
}

// NewService builds the daemon fleet and starts serving.
func NewService(opts Options) (*Service, error) {
	if opts.Workers <= 0 {
		opts.Workers = 4
	}
	if opts.Transport == "" {
		opts.Transport = "inproc"
	}
	if opts.WorkerSlots <= 0 {
		opts.WorkerSlots = 2
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 64
	}
	s := &Service{
		opts:      opts,
		bodies:    live.NewBodyTable(),
		profiles:  map[string]Profile{},
		active:    map[uint64]*Session{},
		perTenant: map[string]int{},
		nextSess:  1,
		retired:   map[string]tenantTotals{},
	}
	s.cond = sync.NewCond(&s.mu)
	for _, p := range opts.Profiles {
		s.profiles[p.Name] = p
	}
	switch opts.Transport {
	case "inproc":
		for i := 0; i < opts.Workers; i++ {
			a, b := inproc.Pipe()
			name := fmt.Sprintf("fleet-%d", i+1)
			ms := live.NewMultiServer(b, live.WorkerOptions{
				Name: name, Bodies: s.bodies, Slots: opts.WorkerSlots,
			})
			go ms.Serve()
			s.daemons = append(s.daemons, &daemon{name: name, mx: mux.New(a)})
			s.servers = append(s.servers, ms)
		}
	case "tcp":
		addr := opts.Listen
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		ln, err := tcp.Listen(addr)
		if err != nil {
			return nil, fmt.Errorf("tenant: %w", err)
		}
		s.ln = ln
		for i := 0; i < opts.Workers; i++ {
			name := fmt.Sprintf("fleet-%d", i+1)
			go func() {
				c, err := tcp.Dial(ln.Addr())
				if err != nil {
					return
				}
				ms := live.NewMultiServer(c, live.WorkerOptions{
					Name: name, Bodies: s.bodies, Slots: opts.WorkerSlots,
				})
				s.mu.Lock()
				s.servers = append(s.servers, ms)
				s.mu.Unlock()
				ms.Serve()
			}()
		}
		total := opts.Workers + opts.AwaitExternal
		for i := 0; i < total; i++ {
			c, err := ln.Accept()
			if err != nil {
				ln.Close()
				return nil, fmt.Errorf("tenant: accepting daemon %d: %w", i+1, err)
			}
			s.daemons = append(s.daemons, &daemon{
				name: fmt.Sprintf("fleet-%d", i+1), mx: mux.New(c),
			})
		}
	default:
		return nil, fmt.Errorf("tenant: unknown transport %q", opts.Transport)
	}
	s.loads = make([]atomic.Int64, len(s.daemons))
	return s, nil
}

// Addr returns the tcp listen address external daemons should dial
// ("" on inproc).
func (s *Service) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr()
}

// profileFor resolves a tenant name to its declared profile or the
// implicit default.
func (s *Service) profileFor(name string) Profile {
	if p, ok := s.profiles[name]; ok {
		return p
	}
	return Profile{Name: name, SlotsPerWorker: s.opts.DefaultSlotsPerWorker}
}

// admissionBlockedLocked reports whether a new session for prof must
// wait. Requires s.mu.
func (s *Service) admissionBlockedLocked(prof Profile) bool {
	inFlight := len(s.active) + s.admitting
	if s.opts.MaxSessions > 0 && inFlight >= s.opts.MaxSessions {
		return true
	}
	if prof.MaxSessions > 0 && s.perTenant[prof.Name] >= prof.MaxSessions {
		return true
	}
	return false
}

// SessionConfig tunes one session beyond its tenant profile.
type SessionConfig struct {
	// Tenant names the quota bucket; see Options.Profiles.
	Tenant string
	// OnTaskDone is forwarded to the session's executor (chaos scripts).
	OnTaskDone func(done int)
	// Trace enables full event recording for this session.
	Trace bool
}

// OpenSession admits one session for a tenant, blocking (bounded by
// MaxQueue waiters) while the service is at capacity — the
// queue-with-backpressure admission policy.
func (s *Service) OpenSession(tenant string) (*Session, error) {
	return s.OpenSessionCfg(SessionConfig{Tenant: tenant})
}

// OpenSessionCfg is OpenSession with per-session knobs.
func (s *Service) OpenSessionCfg(cfg SessionConfig) (*Session, error) {
	prof := s.profileFor(cfg.Tenant)
	s.mu.Lock()
	s.counters.opened++
	queuedHere := false
	for !s.closed && s.admissionBlockedLocked(prof) {
		if !queuedHere {
			if s.queued >= s.opts.MaxQueue {
				s.counters.rejected++
				s.mu.Unlock()
				return nil, ErrBusy
			}
			s.queued++
			s.counters.queued++
			queuedHere = true
		}
		s.cond.Wait()
	}
	if queuedHere {
		s.queued--
	}
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	id := s.nextSess
	s.nextSess++
	s.perTenant[cfg.Tenant]++
	s.admitting++
	s.counters.admitted++
	s.mu.Unlock()

	sess, err := s.buildSession(id, cfg, prof)

	s.mu.Lock()
	s.admitting--
	if err != nil {
		s.perTenant[cfg.Tenant]--
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil, err
	}
	s.active[id] = sess
	if n := len(s.active); n > s.counters.peakActive {
		s.counters.peakActive = n
	}
	s.mu.Unlock()
	return sess, nil
}

// buildSession opens virtual connections to every live daemon and
// stands up the session's own executor over them.
func (s *Service) buildSession(id uint64, cfg SessionConfig, prof Profile) (*Session, error) {
	sess := &Session{
		id: id, tenant: cfg.Tenant, svc: s,
		base: access.ObjectID(id) << 32,
	}
	var peers []live.Peer
	var dmap []int
	for di, d := range s.daemons {
		if d.dead.Load() {
			continue
		}
		c, err := d.mx.Open(id, cfg.Tenant, prof.SlotsPerWorker)
		if err != nil {
			continue // daemon died while we were opening; skip it
		}
		peers = append(peers, live.Peer{Conn: c})
		sess.conns = append(sess.conns, c)
		dmap = append(dmap, di)
	}
	if len(peers) == 0 {
		return nil, fmt.Errorf("tenant: session %d: no live worker daemon", id)
	}
	x, err := live.New(live.Options{
		Peers:         peers,
		Bodies:        s.bodies,
		MaxLiveTasks:  s.opts.MaxLiveTasks,
		Trace:         cfg.Trace || s.opts.Trace,
		TraceRingSize: s.opts.TraceRingSize,
		OnTaskDone:    cfg.OnTaskDone,
		Fleet:         &fleetView{loads: s.loads, dmap: dmap},
		FirstObjectID: sess.base,
	})
	if err != nil {
		for _, c := range sess.conns {
			c.Close()
		}
		return nil, err
	}
	sess.X = x
	return sess, nil
}

// retire is called by Session.Close: the registry slot frees (waking
// queued OpenSession callers) and the session's stats fold into the
// per-tenant aggregate.
func (s *Service) retire(sess *Session) {
	cnt := sess.X.Counters()
	net := sess.X.NetStats()
	fst := sess.X.FaultStats()
	log := sess.X.Log()
	lat := obs.LatencyByLabel(log.Events())
	s.mu.Lock()
	delete(s.active, sess.id)
	s.perTenant[sess.tenant]--
	s.counters.closedSessions++
	tot := s.retired[sess.tenant]
	tot.sessions++
	tot.tasksRun += cnt.TasksRun
	tot.frames += net.Messages
	tot.bytes += net.Bytes
	tot.crashes += fst.CrashesDetected
	if tot.latency == nil {
		tot.latency = map[string]obs.LabelLatency{}
	}
	mergeLatency(tot.latency, lat)
	s.retired[sess.tenant] = tot
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SessionByID returns an active session (the observability endpoint's
// ?session= lookup).
func (s *Service) SessionByID(id uint64) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.active[id]
	return sess, ok
}

// KillWorker fences daemon d (0-based): its physical connection is torn
// down with late-frame drop, so every session with tasks or objects
// there independently detects the loss and runs its own recovery — the
// per-session analogue of PR 6's per-worker fencing.
func (s *Service) KillWorker(d int) error {
	if d < 0 || d >= len(s.daemons) {
		return fmt.Errorf("tenant: no daemon %d", d)
	}
	if s.daemons[d].dead.Swap(true) {
		return nil
	}
	s.daemons[d].mx.Fence()
	return nil
}

// Servers exposes the in-process daemons for ledger and isolation
// inspection (tests, reports).
func (s *Service) Servers() []*live.MultiServer {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*live.MultiServer(nil), s.servers...)
}

// Close shuts the service down. Active sessions' connections die with
// their daemons; callers should Close sessions first for a clean exit.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, d := range s.daemons {
		d.mx.Close()
	}
	if s.ln != nil {
		s.ln.Close()
	}
	return nil
}

// fleetView adapts the service's per-daemon load ledger to one
// session's machine indices (the session may have skipped dead daemons,
// so machine m maps through dmap).
type fleetView struct {
	loads []atomic.Int64
	dmap  []int // session machine index - 1 → daemon index
}

func (f *fleetView) idx(m int) int {
	if m >= 1 && m <= len(f.dmap) {
		return f.dmap[m-1]
	}
	return -1
}

func (f *fleetView) Charge(m int) {
	if d := f.idx(m); d >= 0 {
		f.loads[d].Add(1)
	}
}

func (f *fleetView) Uncharge(m int) {
	if d := f.idx(m); d >= 0 {
		f.loads[d].Add(-1)
	}
}

func (f *fleetView) Load(m int) int {
	if d := f.idx(m); d >= 0 {
		return int(f.loads[d].Load())
	}
	return 0
}
