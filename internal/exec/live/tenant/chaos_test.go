package tenant_test

// Chaos and isolation property tests for the multi-tenant session
// service. The chaos test is the acceptance criterion of DESIGN.md
// §4.15: killing one shared daemon while sessions from several tenants
// are resident must make every affected session independently detect
// the loss and recover to bit-identical results — one tenant's crash
// handling must never leak into another's. The property test drives
// randomized session populations and kill schedules and asserts the
// isolation invariants directly: no object id ever appears outside its
// session's range, and the shared slot ledgers stay exact.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/access"
	"repro/internal/exec/live/livetest"
	"repro/internal/exec/live/tenant"
	"repro/internal/rt"
)

// anchorMark is the value each chain's first link writes into its
// session's anchor object; the final state must preserve it exactly.
const anchorMark = int64(42)

// chainProgram runs a serialized chain of nTasks read-modify-write
// tasks over one counter on session s and returns the final counter and
// anchor values. The chain retires gradually, so a mid-run kill always
// catches sessions with work outstanding. A nonzero pinFirst pins the
// first link to that machine (§4.5 placement control); that link also
// writes the session's anchor object, making the pinned machine the
// anchor's owner. Links ≥ 3 declare a read of the anchor: staging it
// forces the coherence protocol to pull from the owner, so once the
// script (which fires strictly before link 3 can dispatch, under the
// MinPerSession park) has killed that machine, the session's own
// staging path hits the fenced connection and detects the crash —
// deterministically, in-band, not as a race against goroutine
// scheduling on a single-CPU host.
func chainProgram(s *tenant.Session, nTasks, pinFirst int) (int64, int64, error) {
	var ctr, anchor access.ObjectID
	err := s.Run(func(tc rt.TC) {
		var err error
		if ctr, err = tc.Alloc([]int64{0}, "chain"); err != nil {
			panic(err)
		}
		if anchor, err = tc.Alloc([]int64{0}, "anchor"); err != nil {
			panic(err)
		}
		for i := 0; i < nTasks; i++ {
			i := i
			opts := rt.TaskOpts{Label: fmt.Sprintf("link%d", i)}
			decls := []access.Decl{{Object: ctr, Mode: access.ReadWrite}}
			switch {
			case i == 0:
				if pinFirst > 0 {
					opts.Pin = pinFirst + 1 // TaskOpts.Pin is machine index + 1
				}
				decls = append(decls, access.Decl{Object: anchor, Mode: access.ReadWrite})
			case i >= 3:
				decls = append(decls, access.Decl{Object: anchor, Mode: access.Read})
			}
			if err := tc.Create(decls, opts,
				func(ctc rt.TC) {
					v, err := ctc.Access(ctr, access.ReadWrite)
					if err != nil {
						panic(err)
					}
					v.([]int64)[0] += int64(i + 1)
					switch {
					case i == 0:
						a, err := ctc.Access(anchor, access.ReadWrite)
						if err != nil {
							panic(err)
						}
						a.([]int64)[0] = anchorMark
					case i >= 3:
						a, err := ctc.Access(anchor, access.Read)
						if err != nil {
							panic(err)
						}
						if got := a.([]int64)[0]; got != anchorMark {
							panic(fmt.Sprintf("anchor = %d, want %d", got, anchorMark))
						}
					}
				}); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		return 0, 0, err
	}
	return s.X.ObjectValue(ctr).([]int64)[0], s.X.ObjectValue(anchor).([]int64)[0], nil
}

// inRange asserts every id sits inside session sid's private 2³² range.
func inRange(t *testing.T, where string, sid uint64, ids []access.ObjectID) {
	t.Helper()
	lo := access.ObjectID(sid) << 32
	hi := lo + (1 << 32)
	for _, id := range ids {
		if id < lo || id >= hi {
			t.Errorf("%s: session %d holds foreign object %#x (range [%#x, %#x))", where, sid, id, lo, hi)
		}
	}
}

// TestTenantChaosKillRecoversEverySession: four sessions from two
// tenants run long serialized chains over a 3-daemon fleet; the script
// fences daemon 2 early in the combined stream. Every session must
// detect the crash itself, recover independently, and still produce the
// serial answer.
func TestTenantChaosKillRecoversEverySession(t *testing.T) {
	const nTasks = 40
	c, err := livetest.NewTenant(livetest.TenantOptions{
		Daemons:     3,
		WorkerSlots: 2,
		Profiles: []tenant.Profile{
			{Name: "a", SlotsPerWorker: 2},
			{Name: "b", SlotsPerWorker: 2},
		},
		// Fence daemon 2 only once every session has retired ≥2 tasks —
		// the MinPerSession park holds all four mid-run (≥38 tasks
		// outstanding each) until the fence has landed.
		Script: []livetest.TenantStep{{AfterDone: 8, MinPerSession: 2, Kill: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Svc.Close()

	sessions := make([]*tenant.Session, 4)
	for i := range sessions {
		ten := "a"
		if i >= 2 {
			ten = "b"
		}
		if sessions[i], err = c.Open(ten); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	sums := make([]int64, len(sessions))
	anchors := make([]int64, len(sessions))
	errs := make([]error, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *tenant.Session) {
			defer wg.Done()
			// Pin every chain's first link to machine 2 — the daemon the
			// script kills — so every session's anchor object is owned by
			// that daemon when the fence lands (machine i maps to daemon i
			// while the whole fleet is alive); the post-kill anchor reads
			// then force each session onto the fenced connection.
			sums[i], anchors[i], errs[i] = chainProgram(s, nTasks, 2)
		}(i, s)
	}
	wg.Wait()
	c.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if c.Fired() != 1 {
		t.Fatalf("fired %d steps, want 1", c.Fired())
	}
	want := int64(nTasks * (nTasks + 1) / 2)
	for i, s := range sessions {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", s.ID(), errs[i])
		}
		if sums[i] != want {
			t.Errorf("session %d sum = %d, want %d (serial)", s.ID(), sums[i], want)
		}
		if anchors[i] != anchorMark {
			t.Errorf("session %d anchor = %d, want %d (lost in recovery)", s.ID(), anchors[i], anchorMark)
		}
		if fs := s.X.FaultStats(); fs.CrashesDetected < 1 {
			t.Errorf("session %d (tenant %s) never detected the daemon kill", s.ID(), s.Tenant())
		}
		inRange(t, "coordinator", s.ID(), s.X.ObjectIDs())
		s.Close()
	}
	rep := c.Svc.Report()
	if rep.CrashesDetected < len(sessions) {
		t.Fatalf("fleet CrashesDetected = %d, want ≥ %d (one per session)", rep.CrashesDetected, len(sessions))
	}
}

// TestTenantIsolationProperty: randomized session populations (sessions
// per tenant, chain lengths, quotas) under randomized kill schedules.
// Whatever the interleaving: results match the serial oracle, no object
// id from one session appears in another session's coordinator state or
// in any daemon's per-session cache, and the shared slot ledgers stay
// exact (quota peaks within caps, holds summing, everything released on
// surviving daemons).
func TestTenantIsolationProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed * 7919))
			nDaemons := 2 + rng.Intn(2)
			nTenants := 2 + rng.Intn(2)
			nSessions := 3 + rng.Intn(4)
			var profiles []tenant.Profile
			for i := 0; i < nTenants; i++ {
				profiles = append(profiles, tenant.Profile{
					Name: fmt.Sprintf("t%d", i), SlotsPerWorker: 1 + rng.Intn(2),
				})
			}
			var script []livetest.TenantStep
			if rng.Intn(2) == 1 && nDaemons > 1 {
				script = append(script, livetest.TenantStep{
					AfterDone: 3 + rng.Intn(6),
					Kill:      1 + rng.Intn(nDaemons),
				})
			}
			c, err := livetest.NewTenant(livetest.TenantOptions{
				Daemons:     nDaemons,
				WorkerSlots: 2,
				Profiles:    profiles,
				Script:      script,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Svc.Close()

			sessions := make([]*tenant.Session, nSessions)
			lengths := make([]int, nSessions)
			for i := range sessions {
				lengths[i] = 10 + rng.Intn(20)
				if sessions[i], err = c.Open(fmt.Sprintf("t%d", i%nTenants)); err != nil {
					t.Fatal(err)
				}
			}
			var wg sync.WaitGroup
			sums := make([]int64, nSessions)
			errs := make([]error, nSessions)
			for i, s := range sessions {
				wg.Add(1)
				go func(i int, s *tenant.Session) {
					defer wg.Done()
					sums[i], _, errs[i] = chainProgram(s, lengths[i], 0)
				}(i, s)
			}
			wg.Wait()
			c.Wait()
			if err := c.Err(); err != nil {
				t.Fatal(err)
			}
			for i, s := range sessions {
				if errs[i] != nil {
					t.Fatalf("session %d: %v", s.ID(), errs[i])
				}
				if want := int64(lengths[i] * (lengths[i] + 1) / 2); sums[i] != want {
					t.Errorf("session %d sum = %d, want %d (serial)", s.ID(), sums[i], want)
				}
				inRange(t, "coordinator", s.ID(), s.X.ObjectIDs())
			}
			// Daemon-side isolation: every cached object id belongs to
			// the session it is filed under, across live and finished
			// sessions alike.
			for di, ms := range c.Svc.Servers() {
				for sid, objs := range ms.SessionObjects() {
					inRange(t, fmt.Sprintf("daemon %d cache", di+1), sid, objs)
				}
				l := ms.Ledger()
				if l.Violation != "" {
					t.Errorf("daemon %d slot ledger violation: %s", di+1, l.Violation)
				}
				for name, u := range l.PerTenant {
					if u.Cap > 0 && u.Peak > u.Cap {
						t.Errorf("daemon %d tenant %s peaked at %d slots, cap %d", di+1, name, u.Peak, u.Cap)
					}
				}
				if !c.Killed(di+1) && l.Held != 0 {
					t.Errorf("daemon %d still holds %d slots after all sessions finished", di+1, l.Held)
				}
			}
			for _, s := range sessions {
				s.Close()
			}
		})
	}
}
