package live

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/format"
	"repro/internal/rt"
	"repro/internal/transport"
	"repro/internal/transport/wire"
)

// WorkerOptions configure one worker endpoint.
type WorkerOptions struct {
	// Name identifies the worker in coordinator diagnostics.
	Name string
	// Caps are capability tags this worker advertises; tasks created
	// with a matching RequireCap can schedule here.
	Caps []string
	// Format is the worker's native byte order. On a heterogeneous
	// network workers legitimately differ; the coordinator converts.
	Format format.ByteOrder
	// Bodies is the closure table shared with the coordinator when the
	// worker runs in the coordinator's process. Leave nil for a worker
	// in its own process: it gets a private table and a fresh process
	// group, so the coordinator knows closures cannot reach it.
	Bodies *BodyTable
	// Kinds resolves named task kinds; nil uses the global registry.
	Kinds *KindRegistry
	// Group is the process-group token sent in the hello. Zero with a
	// shared Bodies table means "the coordinator's process"; zero
	// without one is replaced by a unique token.
	Group uint64
	// Slots is the number of tasks the worker executes concurrently
	// (processor slots). 0 means 1.
	Slots int
	// Leave, when non-nil, requests a graceful departure when it becomes
	// readable: the worker sends TLeave and keeps serving until the
	// coordinator has drained it and answers TBye.
	Leave <-chan struct{}
	// sharedSlots, when non-nil, replaces the private slot pool: the
	// multi-tenant daemon gates every session's tasks on one shared,
	// quota-aware pool (see MultiServer). Slots still states the pool's
	// total for the hello.
	sharedSlots slotPool
}

// slotPool gates concurrent task execution on a worker. acquire blocks
// for a free slot — and, on a shared multi-tenant pool, for the tenant
// to be under its quota — returning false when abort closes first.
// Deadlock freedom rests on the same discipline as the single-tenant
// pool (DESIGN.md §3.3): blocking RPCs release the slot via rpcYield,
// and inline children borrow their creator's slot.
type slotPool interface {
	acquire(abort <-chan struct{}) bool
	release()
}

// chanPool is the private single-tenant pool: a plain token channel.
type chanPool chan struct{}

func newChanPool(n int) chanPool {
	p := make(chanPool, n)
	for i := 0; i < n; i++ {
		p <- struct{}{}
	}
	return p
}

func (p chanPool) acquire(abort <-chan struct{}) bool {
	select {
	case <-p:
		return true
	case <-abort:
		return false
	}
}

func (p chanPool) release() { p <- struct{}{} }

// ErrEvicted is returned by Serve when the coordinator has declared this
// worker dead and fenced its session. The worker process is in fact
// alive (a false positive of the failure detector); it may rejoin the
// computation only as a brand-new member via a fresh dial.
var ErrEvicted = errors.New("live: worker evicted (declared dead by coordinator)")

var groupCounter atomic.Uint64

// uniqueGroup fabricates a process-group token that will not collide
// with the coordinator's (0) and is vanishingly unlikely to collide
// with another worker process.
func uniqueGroup() uint64 {
	g := uint64(os.Getpid())<<32 ^ uint64(time.Now().UnixNano()) ^ groupCounter.Add(1)
	if g == 0 {
		g = 1
	}
	return g
}

// syncBase is the worker's record of the last object generation both
// sides agree on: the diff base for patches in either direction.
type syncBase struct {
	val any
	ver uint64
}

// worker is one worker endpoint's state.
type worker struct {
	conn  transport.Conn
	opts  WorkerOptions
	m     int // machine index assigned by the coordinator
	slots slotPool

	mu        sync.Mutex
	store     map[access.ObjectID]any
	bases     map[access.ObjectID]syncBase
	pending   map[uint64]chan *wire.Frame
	nextReq   uint64
	err       error
	storeCond *sync.Cond // broadcast on every store insert and on fail
	closed    bool       // set by fail; wakes awaitObject waiters

	dead     chan struct{}
	deadOnce sync.Once
	wg       sync.WaitGroup // running task goroutines
}

// Serve runs a worker on an established connection until the
// coordinator says goodbye or the connection fails. It blocks for the
// whole run; run it in a goroutine for in-process workers.
func Serve(conn transport.Conn, opts WorkerOptions) error {
	return newWorker(conn, opts).serve()
}

// newWorker normalizes opts and builds the endpoint state. Split from
// serve so the multi-tenant daemon can hold the handle for inspection.
func newWorker(conn transport.Conn, opts WorkerOptions) *worker {
	if opts.Slots <= 0 {
		opts.Slots = 1
	}
	if opts.Kinds == nil {
		opts.Kinds = Kinds
	}
	if opts.Bodies == nil {
		opts.Bodies = NewBodyTable()
		if opts.Group == 0 {
			opts.Group = uniqueGroup()
		}
	}
	w := &worker{
		conn:    conn,
		opts:    opts,
		slots:   opts.sharedSlots,
		store:   map[access.ObjectID]any{},
		bases:   map[access.ObjectID]syncBase{},
		pending: map[uint64]chan *wire.Frame{},
		nextReq: 1,
		dead:    make(chan struct{}),
	}
	if w.slots == nil {
		w.slots = newChanPool(opts.Slots)
	}
	w.storeCond = sync.NewCond(&w.mu)
	return w
}

func (w *worker) serve() error {
	conn, opts := w.conn, w.opts
	if err := w.send(&wire.Frame{
		Type: wire.THello, Label: opts.Name,
		Aux: strings.Join(opts.Caps, ","),
		A:   uint64(opts.Format), B: opts.Group, C: uint64(opts.Slots),
	}); err != nil {
		return err
	}
	msg, err := conn.Recv()
	if err != nil {
		w.fail(err)
		return fmt.Errorf("live worker: waiting for welcome: %w", err)
	}
	f, err := wire.Decode(msg)
	if err != nil {
		w.fail(err)
		return fmt.Errorf("live worker: %w", err)
	}
	if f.Type != wire.TWelcome {
		err := fmt.Errorf("live worker: expected welcome, got %s", wire.TypeName(f.Type))
		w.fail(err)
		return err
	}
	w.m = int(f.A)
	if opts.Leave != nil {
		go func() {
			select {
			case <-opts.Leave:
				w.send(&wire.Frame{Type: wire.TLeave})
			case <-w.dead:
			}
		}()
	}
	err = w.loop()
	w.wg.Wait()
	return err
}

// fail records the first terminal error and releases every waiter.
func (w *worker) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.closed = true
	w.storeCond.Broadcast()
	w.mu.Unlock()
	w.deadOnce.Do(func() { close(w.dead) })
}

// failErr is the terminal error to report from an unwound wait.
func (w *worker) failErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return w.err
	}
	return transport.ErrClosed
}

// send encodes and ships one frame to the coordinator, recycling the
// encode buffer through the transport pool when the transport accepts
// ownership.
func (w *worker) send(f *wire.Frame) error {
	buf, err := wire.AppendFrame(transport.GetBuf(), f)
	if err != nil {
		err = fmt.Errorf("live worker %d: encode %s: %w", w.m, wire.TypeName(f.Type), err)
		w.fail(err)
		return err
	}
	if err := transport.SendPooled(w.conn, buf); err != nil {
		w.fail(err)
		return err
	}
	return nil
}

// rpc ships a request frame and waits for the routed reply.
func (w *worker) rpc(f *wire.Frame) (*wire.Frame, error) {
	ch := make(chan *wire.Frame, 1)
	w.mu.Lock()
	f.Req = w.nextReq
	w.nextReq++
	w.pending[f.Req] = ch
	w.mu.Unlock()
	if err := w.send(f); err != nil {
		return nil, err
	}
	select {
	case r := <-ch:
		return r, nil
	case <-w.dead:
		return nil, w.failErr()
	}
}

// loop is the worker's receive loop. Object traffic and replies are
// handled inline (none of it blocks); dispatched task bodies run in
// their own goroutines gated by the slot tokens.
func (w *worker) loop() error {
	for {
		msg, err := w.conn.Recv()
		if err != nil {
			w.fail(err)
			return fmt.Errorf("live worker %d: connection lost: %w", w.m, err)
		}
		f, err := wire.DecodeOwned(msg)
		if err != nil {
			w.fail(err)
			return fmt.Errorf("live worker %d: %w", w.m, err)
		}
		if len(f.Payload) == 0 {
			// Payload is the only Frame field that aliases msg (strings
			// are copies): a payload-free frame releases its buffer to
			// the send pool immediately.
			transport.PutBuf(msg)
		}
		switch f.Type {
		case wire.TDispatch:
			w.wg.Add(1)
			go w.runTask(f)
		case wire.TObjImage:
			err = w.applyImage(f)
		case wire.TObjPatch:
			err = w.applyPatch(f)
		case wire.TObjZero:
			err = w.applyZero(f)
		case wire.TInvalidate:
			w.applyInvalidate(f)
		case wire.TPull:
			err = w.answerPull(f)
		case wire.TReply:
			w.mu.Lock()
			ch := w.pending[f.Req]
			delete(w.pending, f.Req)
			w.mu.Unlock()
			if ch != nil {
				ch <- f
			}
		case wire.TBye:
			w.fail(transport.ErrClosed)
			return nil
		case wire.TEvict:
			w.fail(ErrEvicted)
			return ErrEvicted
		default:
			err = fmt.Errorf("live worker %d: unexpected %s frame", w.m, wire.TypeName(f.Type))
		}
		if err == nil && f.Aux != "" &&
			(f.Type == wire.TObjImage || f.Type == wire.TObjPatch || f.Type == wire.TObjZero) {
			// A coalesced dispatch rode this push: unwrap it and start
			// the task, now that its first object is installed.
			df, derr := wire.DecodeOwned([]byte(f.Aux))
			if derr != nil || df.Type != wire.TDispatch {
				err = fmt.Errorf("live worker %d: coalesced dispatch on %s frame: %v", w.m, wire.TypeName(f.Type), derr)
			} else {
				w.wg.Add(1)
				go w.runTask(df)
			}
		}
		if err != nil {
			w.fail(err)
			return err
		}
	}
}

// applyImage installs a full object image and records it as the new
// sync base. The coordinator converts to this worker's byte order
// before sending; the order check is defensive.
func (w *worker) applyImage(f *wire.Frame) error {
	img := f.Payload
	if ord := format.ByteOrder(f.B); ord != w.opts.Format {
		conv, _, err := format.Convert(img, ord, w.opts.Format)
		if err != nil {
			return fmt.Errorf("live worker %d: object #%d image: %w", w.m, f.Obj, err)
		}
		img = conv
	}
	v, err := format.Decode(img, w.opts.Format)
	if err != nil {
		return fmt.Errorf("live worker %d: object #%d image: %w", w.m, f.Obj, err)
	}
	obj := access.ObjectID(f.Obj)
	w.mu.Lock()
	w.store[obj] = v
	w.bases[obj] = syncBase{val: format.Clone(v), ver: f.A}
	w.storeCond.Broadcast()
	w.mu.Unlock()
	return nil
}

// applyPatch advances the object from the recorded sync base.
func (w *worker) applyPatch(f *wire.Frame) error {
	obj := access.ObjectID(f.Obj)
	w.mu.Lock()
	defer w.mu.Unlock()
	b, ok := w.bases[obj]
	if !ok || b.ver != f.C {
		have := "none"
		if ok {
			have = fmt.Sprint(b.ver)
		}
		return fmt.Errorf("live worker %d: patch for object #%d against base %d, have %s", w.m, f.Obj, f.C, have)
	}
	patch := f.Payload
	if ord := format.ByteOrder(f.B); ord != w.opts.Format {
		conv, _, err := format.ConvertPatch(patch, ord, w.opts.Format)
		if err != nil {
			return fmt.Errorf("live worker %d: object #%d patch: %w", w.m, f.Obj, err)
		}
		patch = conv
	}
	nv, err := format.ApplyPatch(b.val, patch, w.opts.Format)
	if err != nil {
		return fmt.Errorf("live worker %d: object #%d patch: %w", w.m, f.Obj, err)
	}
	w.store[obj] = nv
	w.bases[obj] = syncBase{val: format.Clone(nv), ver: f.A}
	w.storeCond.Broadcast()
	return nil
}

// applyZero installs a fresh zeroed buffer: a write-only grant ships no
// data, only the shape.
func (w *worker) applyZero(f *wire.Frame) error {
	v := makeZero(format.Kind(f.B), int(f.C))
	if v == nil {
		return fmt.Errorf("live worker %d: zero grant for object #%d with invalid kind %d", w.m, f.Obj, f.B)
	}
	obj := access.ObjectID(f.Obj)
	w.mu.Lock()
	w.store[obj] = v
	delete(w.bases, obj) // no shared base: the next pull goes full
	w.storeCond.Broadcast()
	w.mu.Unlock()
	return nil
}

// applyInvalidate discards the copy but keeps it as the frozen sync
// base, so a later re-grant can arrive as a patch.
func (w *worker) applyInvalidate(f *wire.Frame) {
	obj := access.ObjectID(f.Obj)
	w.mu.Lock()
	if v, ok := w.store[obj]; ok {
		w.bases[obj] = syncBase{val: format.Clone(v), ver: f.A}
		delete(w.store, obj)
	}
	w.mu.Unlock()
}

// answerPull ships the object's current contents to the coordinator —
// as a patch when the coordinator's stated base matches the recorded
// sync base, full otherwise — and advances the base to the pulled
// generation. Never blocks: pulls are answered even while the worker's
// tasks are parked in RPCs.
func (w *worker) answerPull(f *wire.Frame) error {
	obj := access.ObjectID(f.Obj)
	w.mu.Lock()
	v, ok := w.store[obj]
	if !ok {
		w.mu.Unlock()
		return fmt.Errorf("live worker %d: pull of object #%d, which this worker does not hold", w.m, f.Obj)
	}
	out := &wire.Frame{Type: wire.TObjData, Req: f.Req, Obj: f.Obj, A: f.A, B: uint64(w.opts.Format)}
	if b, ok := w.bases[obj]; ok && b.ver == f.B {
		if patch, _, diffOK := format.Diff(b.val, v, w.opts.Format); diffOK {
			out.C = f.B + 1
			out.Payload = patch
		}
	}
	if out.Payload == nil && out.C == 0 {
		img, err := format.Encode(v, w.opts.Format)
		if err != nil {
			w.mu.Unlock()
			return fmt.Errorf("live worker %d: pull of object #%d: %w", w.m, f.Obj, err)
		}
		out.Payload = img
	}
	w.bases[obj] = syncBase{val: format.Clone(v), ver: f.A}
	w.mu.Unlock()
	return w.send(out)
}

// objectIDs snapshots every object id resident in this worker's cache:
// live store entries plus sync bases (which outlive invalidation). The
// cross-tenant isolation tests use it to prove no foreign session's
// object ever lands here.
func (w *worker) objectIDs() []access.ObjectID {
	w.mu.Lock()
	defer w.mu.Unlock()
	seen := make(map[access.ObjectID]struct{}, len(w.store)+len(w.bases))
	for id := range w.store {
		seen[id] = struct{}{}
	}
	for id := range w.bases {
		seen[id] = struct{}{}
	}
	ids := make([]access.ObjectID, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	return ids
}

// runTask executes one dispatched task body in its own goroutine.
func (w *worker) runTask(f *wire.Frame) {
	defer w.wg.Done()
	grants, args, gerr := unmarshalDispatchPayload(f.Payload)
	if gerr != nil {
		w.send(&wire.Frame{Type: wire.TTaskFail, Task: f.Task,
			Label: fmt.Sprintf("malformed dispatch payload: %v", gerr)})
		return
	}
	var body func(rt.TC)
	if f.A != 0 {
		body, _ = w.opts.Bodies.take(f.A)
	}
	if body == nil && f.Aux != "" {
		body, _ = w.opts.Kinds.resolve(f.Aux, args)
	}
	if body == nil {
		w.send(&wire.Frame{Type: wire.TTaskFail, Task: f.Task,
			Label: fmt.Sprintf("no body for key %d and no registered kind %q on this worker", f.A, f.Aux)})
		return
	}
	if !w.slots.acquire(w.dead) {
		return
	}
	wt := &watch{heldAt: time.Now()}
	tc := &workerTC{w: w, task: f.Task, wt: wt, grants: grants}
	err := w.runBody(tc, body)
	wt.busy += time.Since(wt.heldAt)
	if !wt.lost {
		w.slots.release()
	}
	if err != nil {
		w.send(&wire.Frame{Type: wire.TTaskFail, Task: f.Task, Label: err.Error()})
		return
	}
	w.send(&wire.Frame{Type: wire.TTaskDone, Task: f.Task, A: uint64(wt.busy)})
}

// runBody executes a body, converting panics into task failure.
func (w *worker) runBody(tc rt.TC, body func(rt.TC)) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	body(tc)
	return nil
}

// watch is the busy stopwatch for one dispatched task and any children
// it inlines (they borrow its processor slot).
type watch struct {
	heldAt time.Time
	busy   time.Duration
	// lost records that the slot token was released for an RPC and never
	// re-acquired because the worker died; the task must not return a
	// token it does not hold.
	lost bool
}

// workerTC implements rt.TC for a task body running on a worker. Every
// operation is a small RPC to the coordinator's engine; blocking RPCs
// release the processor slot so other tasks can run meanwhile —
// otherwise a worker whose only task is waiting for an access grant
// could never run the earlier task that grant depends on.
type workerTC struct {
	w    *worker
	task uint64
	wt   *watch
	// grants are the access modes pre-granted at dispatch time (the
	// task's immediate non-commuting declarations): an Access within a
	// grant cannot conflict engine-side, so it skips the round trip.
	// Touched only by the task's own goroutine.
	grants map[access.ObjectID]access.Mode
	// spawned flips once this task creates a child; from then on every
	// Access takes the slow path, because a conflicting child may
	// legitimately make the parent's deferred re-access wait.
	spawned bool
}

// CoreTask implements rt.TC. The engine record lives on the
// coordinator; worker-side bodies have no local view of it.
func (tc *workerTC) CoreTask() *core.Task { return nil }

// Machine implements rt.TC.
func (tc *workerTC) Machine() int { return tc.w.m }

// rpcYield performs an RPC with the processor slot released.
func (tc *workerTC) rpcYield(f *wire.Frame) (*wire.Frame, error) {
	w := tc.w
	tc.wt.busy += time.Since(tc.wt.heldAt)
	w.slots.release()
	r, err := w.rpc(f)
	if !w.slots.acquire(w.dead) {
		tc.wt.lost = true
		return nil, w.failErr()
	}
	tc.wt.heldAt = time.Now()
	return r, err
}

// canFastPath reports whether an Access is covered by a dispatch-time
// pre-grant: plain read/write modes only, no children spawned yet, and
// the requested bits a subset of the granted bits.
func (tc *workerTC) canFastPath(obj access.ObjectID, m access.Mode) bool {
	if tc.spawned || m == 0 || m&^access.ReadWrite != 0 {
		return false
	}
	g, ok := tc.grants[obj]
	return ok && g&m == m
}

// awaitObject waits for a copy of obj to land in the store. Presence is
// currency: stale copies are always invalidated out of the store, so a
// stored value is the one the coordinator granted.
func (w *worker) awaitObject(obj access.ObjectID) (any, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if v, ok := w.store[obj]; ok {
			return v, nil
		}
		if w.closed {
			if w.err != nil {
				return nil, w.err
			}
			return nil, transport.ErrClosed
		}
		w.storeCond.Wait()
	}
}

// Access implements rt.TC.
func (tc *workerTC) Access(obj access.ObjectID, m access.Mode) (any, error) {
	if tc.canFastPath(obj, m) {
		// Pre-granted at dispatch: the engine cannot make this access
		// wait, so the request is fire-and-forget (B=1 marks it as a
		// notify handled inline by the coordinator) and the task only
		// waits for the object copy itself — keeping its slot, since no
		// local task can be what it is waiting for.
		if err := tc.w.send(&wire.Frame{Type: wire.TAccessReq, Task: tc.task, Obj: uint64(obj), A: uint64(m), B: 1}); err != nil {
			return nil, err
		}
		return tc.w.awaitObject(obj)
	}
	r, err := tc.rpcYield(&wire.Frame{Type: wire.TAccessReq, Task: tc.task, Obj: uint64(obj), A: uint64(m)})
	if err != nil {
		return nil, err
	}
	if r.Label != "" {
		return nil, errors.New(r.Label)
	}
	tc.w.mu.Lock()
	v, ok := tc.w.store[obj]
	tc.w.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("live worker %d: access granted for object #%d but no copy arrived", tc.w.m, obj)
	}
	return v, nil
}

// EndAccess implements rt.TC (fire-and-forget; FIFO ordering makes it
// visible to the engine before anything else this task does next).
func (tc *workerTC) EndAccess(obj access.ObjectID, m access.Mode) {
	delete(tc.grants, obj) // released grants never fast-path again
	tc.w.send(&wire.Frame{Type: wire.TEndAccess, Task: tc.task, Obj: uint64(obj), A: uint64(m)})
}

// ClearAccess implements rt.TC.
func (tc *workerTC) ClearAccess(obj access.ObjectID) {
	delete(tc.grants, obj)
	tc.w.send(&wire.Frame{Type: wire.TClearAccess, Task: tc.task, Obj: uint64(obj)})
}

// Convert implements rt.TC.
func (tc *workerTC) Convert(obj access.ObjectID, which access.Mode) error {
	delete(tc.grants, obj) // the declaration changed shape: slow-path it
	r, err := tc.rpcYield(&wire.Frame{Type: wire.TConvertReq, Task: tc.task, Obj: uint64(obj), A: uint64(which)})
	if err != nil {
		return err
	}
	if r.Label != "" {
		return errors.New(r.Label)
	}
	return nil
}

// Retract implements rt.TC (never blocks engine-side; keep the slot).
func (tc *workerTC) Retract(obj access.ObjectID, which access.Mode) error {
	delete(tc.grants, obj)
	r, err := tc.w.rpc(&wire.Frame{Type: wire.TRetractReq, Task: tc.task, Obj: uint64(obj), A: uint64(which)})
	if err != nil {
		return err
	}
	if r.Label != "" {
		return errors.New(r.Label)
	}
	return nil
}

// Create implements rt.TC. The closure is parked in this process's body
// table and only its key crosses the wire; the coordinator decides
// placement — or inline execution, which comes back to run here on the
// creator's slot.
func (tc *workerTC) Create(decls []access.Decl, opts rt.TaskOpts, body func(rt.TC)) error {
	w := tc.w
	if body == nil && opts.Kind == "" {
		return fmt.Errorf("create %q: nil body and no kind", opts.Label)
	}
	// A child may conflict with the parent's declarations; after this
	// point a parent Access can legitimately be made to wait, so the
	// pre-grant fast path is off for the rest of the task.
	tc.spawned = true
	var key uint64
	if body != nil {
		key = w.opts.Bodies.put(body)
	}
	r, err := w.rpc(&wire.Frame{
		Type: wire.TCreateReq, Task: tc.task,
		Label: opts.Label, Aux: opts.Kind,
		A: key, B: costBits(opts.Cost), C: uint64(opts.Pin),
		Payload: marshalCreate(createReq{decls: decls, requireCap: opts.RequireCap, kindArgs: opts.KindArgs}),
	})
	if err != nil {
		if key != 0 {
			w.opts.Bodies.drop(key)
		}
		return err
	}
	if r.Label != "" {
		if key != 0 {
			w.opts.Bodies.drop(key)
		}
		return errors.New(r.Label)
	}
	if r.B != 1 {
		return nil // dispatched: a worker will claim the body by key
	}

	// Inline: reclaim the body and run it here once the coordinator
	// reports the child ready and its objects staged.
	childID := r.A
	if key != 0 {
		body, _ = w.opts.Bodies.take(key)
	}
	if body == nil {
		if b, ok := w.opts.Kinds.resolve(opts.Kind, opts.KindArgs); ok {
			body = b
		}
	}
	sr, err := tc.rpcYield(&wire.Frame{Type: wire.TStartReq, Task: childID})
	if err != nil {
		return err
	}
	if sr.Label != "" {
		return errors.New(sr.Label)
	}
	child := &workerTC{w: w, task: childID, wt: tc.wt}
	if body == nil {
		w.send(&wire.Frame{Type: wire.TTaskFail, Task: childID,
			Label: fmt.Sprintf("kind %q not registered on worker %d (inline execution)", opts.Kind, w.m)})
		return fmt.Errorf("create %q: kind %q not registered on this worker", opts.Label, opts.Kind)
	}
	if err := w.runBody(child, body); err != nil {
		w.send(&wire.Frame{Type: wire.TTaskFail, Task: childID, Label: err.Error()})
		return nil // mirrors smp: the failure is recorded, the creator continues
	}
	w.send(&wire.Frame{Type: wire.TTaskDone, Task: childID})
	return nil
}

// Alloc implements rt.TC: the worker keeps the live value and becomes
// the owner; the coordinator registers the object and caches a copy.
func (tc *workerTC) Alloc(initial any, label string) (access.ObjectID, error) {
	w := tc.w
	if format.KindOf(initial) == format.KindInvalid {
		return 0, fmt.Errorf("alloc %q: unsupported object type %T (portable Jade objects must be format-encodable)", label, initial)
	}
	img, err := format.Encode(initial, w.opts.Format)
	if err != nil {
		return 0, err
	}
	r, err := w.rpc(&wire.Frame{Type: wire.TAllocReq, Task: tc.task,
		Label: label, A: uint64(w.opts.Format), Payload: img})
	if err != nil {
		return 0, err
	}
	if r.Label != "" {
		return 0, errors.New(r.Label)
	}
	id := access.ObjectID(r.A)
	w.mu.Lock()
	w.store[id] = initial
	w.bases[id] = syncBase{val: format.Clone(initial), ver: 0}
	w.storeCond.Broadcast()
	w.mu.Unlock()
	return id, nil
}

// Charge implements rt.TC: computation takes real time on a live run.
func (tc *workerTC) Charge(work float64) {}

var _ rt.TC = (*workerTC)(nil)
