// Package rt defines the contract between the public jade package and the
// execution substrates (internal/exec/smp, internal/exec/dist). A Jade
// program is written once against the TC interface; the paper's portability
// claim — the same program runs unmodified on shared-memory machines,
// message-passing machines and heterogeneous workstation networks — becomes
// the statement that every Exec implementation executes the same TC calls
// with the same results.
package rt

import (
	"time"

	"repro/internal/access"
	"repro/internal/core"
	"repro/internal/trace"
)

// Counters are the always-on execution counters every executor maintains
// regardless of trace mode: they are cheap plain accumulators, so the
// public metrics report can state makespan, task counts and per-machine
// busy time even for untraced runs.
type Counters struct {
	// TasksRun counts executed task bodies, including inlined children and
	// the main program.
	TasksRun int
	// Busy is per-machine (per processor slot on the shared-memory
	// executor) time spent holding the processor.
	Busy []time.Duration
}

// TaskOpts carries per-task scheduling information (§4.5 low-level control
// plus the simulator's cost model). The zero value means: unlabeled, no
// modeled cost, any machine.
type TaskOpts struct {
	// Label names the task in traces and the task graph.
	Label string
	// Cost is the task body's computational work in abstract work units;
	// a machine of speed S executes it in Cost/S seconds of virtual time.
	// Ignored by the real shared-memory executor (real code takes real
	// time). Additional dynamic work can be charged with TC.Charge.
	Cost float64
	// Pin, when positive, pins the task to machine index Pin-1 (§4.5
	// explicit placement). Zero leaves placement to the scheduler.
	Pin int
	// RequireCap restricts scheduling to machines with a capability tag.
	RequireCap string
	// Kind names a registered task-kind constructor (internal/exec/live)
	// so the task can execute in a worker process that cannot share the
	// body closure. Tasks with a Kind may pass a nil body to Create.
	Kind string
	// KindArgs is the opaque argument blob handed to the kind
	// constructor on the executing worker.
	KindArgs []byte
}

// PinnedMachine returns the pinned machine index, if any.
func (o TaskOpts) PinnedMachine() (int, bool) {
	if o.Pin > 0 {
		return o.Pin - 1, true
	}
	return 0, false
}

// TC is the execution context handed to a running task body. All methods
// must be called from the task's own body (its goroutine or simulated
// process). Blocking methods suspend only this task; the executor keeps
// running other tasks.
type TC interface {
	// CoreTask returns the engine record for this task.
	CoreTask() *core.Task
	// Machine returns the index of the machine (or processor slot)
	// currently executing the task.
	Machine() int

	// Access acquires a checked view of obj for immediate mode m and
	// returns the machine-local value (a slice; mutations through a Write
	// view update the object). It blocks until the access is legal.
	Access(obj access.ObjectID, m access.Mode) (any, error)
	// EndAccess releases a view acquired by Access. Required before
	// creating a child whose declaration conflicts with the view.
	EndAccess(obj access.ObjectID, m access.Mode)
	// ClearAccess releases all views this task holds on obj.
	ClearAccess(obj access.ObjectID)
	// Convert promotes deferred rights to immediate (with-cont rd/wr),
	// blocking until the rights are available. which selects the deferred
	// bits (DeferredRead, DeferredWrite or both).
	Convert(obj access.ObjectID, which access.Mode) error
	// Retract drops rights (with-cont no_rd/no_wr). which selects kinds:
	// access.AnyRead for no_rd, access.AnyWrite for no_wr.
	Retract(obj access.ObjectID, which access.Mode) error

	// Create runs a withonly-do construct: declare a child task. The body
	// executes asynchronously once its declarations are enabled. Create may
	// block on the executor's task-creation throttle.
	Create(decls []access.Decl, opts TaskOpts, body func(TC)) error
	// Alloc allocates a shared object holding initial (a supported slice
	// kind, see internal/format) and returns its global identifier. The
	// calling task gets implicit read/write rights on it.
	Alloc(initial any, label string) (access.ObjectID, error)
	// Charge adds dynamic computational work to the current task (virtual
	// time in the simulator; no-op on real hardware).
	Charge(work float64)
}

// Exec executes Jade programs.
type Exec interface {
	// Run executes the main program and returns once every task has
	// completed. It returns the first specification violation or internal
	// error, if any.
	Run(root func(TC)) error
	// Engine returns the dependency engine (for statistics).
	Engine() *core.Engine
	// Log returns the execution trace (the bounded always-on stream, or
	// the full log when tracing was requested).
	Log() *trace.Log
	// Counters returns the always-on execution counters. Valid after Run.
	Counters() Counters
	// ObjectValue returns an object's final value after Run (the owner
	// machine's version). It is intended for result verification.
	ObjectValue(obj access.ObjectID) any
}
