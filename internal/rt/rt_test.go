package rt

import "testing"

func TestPinnedMachine(t *testing.T) {
	if _, ok := (TaskOpts{}).PinnedMachine(); ok {
		t.Fatal("zero value must mean unpinned")
	}
	m, ok := (TaskOpts{Pin: 1}).PinnedMachine()
	if !ok || m != 0 {
		t.Fatalf("Pin 1 should mean machine 0, got %d/%v", m, ok)
	}
	m, ok = (TaskOpts{Pin: 5}).PinnedMachine()
	if !ok || m != 4 {
		t.Fatalf("Pin 5 should mean machine 4, got %d/%v", m, ok)
	}
}
