// Package fault injects failures into the simulated distributed platform:
// machine crashes at scripted virtual times, probabilistic message loss and
// duplication, and timed link partitions. The paper's headline environment —
// a network of workstations on shared Ethernet (§6, the Mica array) — is
// exactly the setting where these anomalies are routine, and Jade's access
// specifications make recovery tractable: a task is a pure function of its
// declared read set, so re-executing it on a surviving machine provably
// reproduces the deterministic serial semantics.
//
// The package provides mechanism, not policy. A Plan scripts what goes
// wrong; Network wraps a netmodel.Network and applies loss, duplication,
// partitions and crash fencing to individual send attempts. The distributed
// executor (internal/exec/dist) owns policy: it schedules the crashes,
// probes machines with virtual-time heartbeats, retries lost messages with
// exponential backoff, and re-executes the dead machine's tasks.
package fault

import (
	"fmt"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

// Failure-detector and retry defaults. The simulated distributed executor
// applies them in virtual time; the live TCP transport reuses the same
// parameters in wall-clock time, scaled by its LivenessScale so real
// scheduling jitter does not trip a detector tuned for a simulator.
const (
	// DefaultHeartbeatInterval is the probe period of the failure detector.
	DefaultHeartbeatInterval = 10 * time.Millisecond
	// DefaultHeartbeatTimeout is the initial wait after a missed probe;
	// detectors double it per consecutive miss.
	DefaultHeartbeatTimeout = 3 * time.Millisecond
	// DefaultHeartbeatRetries is how many consecutive misses declare a
	// machine dead.
	DefaultHeartbeatRetries = 3
	// DefaultRetryBackoff is the initial retransmission delay of a
	// reliable send; it doubles per retry.
	DefaultRetryBackoff = 2 * time.Millisecond
)

// Cadence bundles the failure-detector timing parameters so every
// consumer — the simulated executor's virtual-time detector and the live
// TCP transport's wall-clock heartbeats — draws from one source of truth
// instead of copying the Default* constants field by field.
type Cadence struct {
	// HeartbeatInterval is the probe (or idle-heartbeat) period.
	HeartbeatInterval time.Duration
	// HeartbeatTimeout is the initial wait after a missed probe,
	// doubling per consecutive miss.
	HeartbeatTimeout time.Duration
	// HeartbeatRetries is the consecutive-miss budget before a machine
	// is declared dead.
	HeartbeatRetries int
	// RetryBackoff is the initial retransmission (or redial) delay,
	// doubling per retry.
	RetryBackoff time.Duration
}

// DefaultCadence returns the canonical detector cadence (the Default*
// constants as one value).
func DefaultCadence() Cadence {
	return Cadence{
		HeartbeatInterval: DefaultHeartbeatInterval,
		HeartbeatTimeout:  DefaultHeartbeatTimeout,
		HeartbeatRetries:  DefaultHeartbeatRetries,
		RetryBackoff:      DefaultRetryBackoff,
	}
}

// Scaled multiplies the durations by k (the retry count is unitless and
// unchanged): how the live transport converts simulator cadence into
// wall-clock settings that tolerate real scheduler jitter.
func (c Cadence) Scaled(k int) Cadence {
	c.HeartbeatInterval *= time.Duration(k)
	c.HeartbeatTimeout *= time.Duration(k)
	c.RetryBackoff *= time.Duration(k)
	return c
}

// Deadline is how long a silent peer stays presumed-live: one full
// heartbeat interval plus the exponential miss budget.
func (c Cadence) Deadline() time.Duration {
	return c.HeartbeatInterval + c.HeartbeatTimeout*(1<<c.HeartbeatRetries)
}

// Crash schedules the fail-stop death of one machine: at virtual time At its
// processor halts and its memory (object store, shadows) is lost. Machine 0
// hosts the main program and the runtime's control state and cannot crash —
// the same asymmetry as the paper's host/worker split.
type Crash struct {
	Machine int
	At      time.Duration
}

// Partition blocks all messages between machines A and B (both directions)
// during the virtual-time window [From, To). A partitioned machine that
// stops answering the failure detector's probes is fenced: the runtime
// declares it dead and recovers, which keeps the execution deterministic at
// the price of discarding a live machine.
type Partition struct {
	A, B     int
	From, To time.Duration
}

// Plan scripts the failures of one run. The zero value (and a nil *Plan)
// injects nothing.
type Plan struct {
	// Crashes are scripted fail-stop machine deaths.
	Crashes []Crash
	// LossRate is the probability a message attempt vanishes in transit.
	LossRate float64
	// DupRate is the probability a delivered message arrives twice; the
	// receiver drops the duplicate by sequence number.
	DupRate float64
	// Partitions are timed link outages.
	Partitions []Partition
	// Seed drives the deterministic loss/duplication decisions. Runs with
	// the same plan are bit-identical.
	Seed int64
}

// Active reports whether the plan injects any fault. Nil-safe.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	return len(p.Crashes) > 0 || p.LossRate > 0 || p.DupRate > 0 || len(p.Partitions) > 0
}

// Validate checks the plan against a platform of n machines. Machine 0 is
// the control machine (main program, input logs, failure detector) and may
// not crash; rates are capped below 1 so retransmission terminates.
func (p *Plan) Validate(n int) error {
	if p == nil {
		return nil
	}
	seen := map[int]bool{}
	for _, c := range p.Crashes {
		if c.Machine <= 0 || c.Machine >= n {
			return fmt.Errorf("fault: crash of machine %d: must be in 1..%d (machine 0 is the control machine and cannot crash)", c.Machine, n-1)
		}
		if seen[c.Machine] {
			return fmt.Errorf("fault: machine %d crashes twice", c.Machine)
		}
		seen[c.Machine] = true
		if c.At < 0 {
			return fmt.Errorf("fault: crash of machine %d at negative time %v", c.Machine, c.At)
		}
	}
	if p.LossRate < 0 || p.LossRate > 0.9 {
		return fmt.Errorf("fault: loss rate %v outside [0, 0.9]", p.LossRate)
	}
	if p.DupRate < 0 || p.DupRate > 0.9 {
		return fmt.Errorf("fault: duplication rate %v outside [0, 0.9]", p.DupRate)
	}
	for _, pt := range p.Partitions {
		if pt.A < 0 || pt.A >= n || pt.B < 0 || pt.B >= n || pt.A == pt.B {
			return fmt.Errorf("fault: partition between machines %d and %d invalid for %d machines", pt.A, pt.B, n)
		}
		if pt.To < pt.From {
			return fmt.Errorf("fault: partition window [%v, %v) is empty", pt.From, pt.To)
		}
	}
	return nil
}

// Stats counts what the fault layer injected and what the runtime survived.
// The Network fills the injection-side counters; the distributed executor
// fills the detection/recovery side and merges both with Add.
type Stats struct {
	// CrashesInjected counts scripted machine deaths that fired.
	CrashesInjected int
	// CrashesDetected counts machines the failure detector declared dead.
	CrashesDetected int
	// FalseSuspicions counts live machines the detector declared dead (and
	// fenced) because loss or a partition swallowed their heartbeats.
	FalseSuspicions int
	// MessagesLost, MessagesDuplicated and DuplicatesDropped count the
	// injected message anomalies; every duplicate is idempotently dropped by
	// the receiver's sequence-number filter.
	MessagesLost       int
	MessagesDuplicated int
	DuplicatesDropped  int
	// MessagesBlocked counts sends into a partition or to a dead machine.
	MessagesBlocked int
	// MessagesRetried counts retransmissions by the executor's reliable
	// send (ack/retry with exponential backoff).
	MessagesRetried int
	// HeartbeatsSent counts failure-detector probe messages (pings + acks).
	HeartbeatsSent int
	// TasksReexecuted counts in-flight tasks of a dead machine re-placed and
	// re-run from their declared read sets; TasksReplayed counts committed
	// tasks deterministically replayed from logged inputs to re-derive an
	// object version that existed only on the dead machine.
	TasksReexecuted int
	TasksReplayed   int
	// ObjectsRebuilt counts directory entries reconstructed after a crash
	// (ownership promoted to a surviving copy, restored from a shadow, or
	// re-derived by replay).
	ObjectsRebuilt int
	// WorkersJoined and WorkersDrained count elastic-membership events on
	// a live run: workers admitted to a running coordinator and workers
	// that left gracefully (objects synced back before departure).
	WorkersJoined  int
	WorkersDrained int
	// RecoveryTime is the summed virtual-time unavailability window: from
	// each crash to the completion of its recovery.
	RecoveryTime time.Duration
}

// Add returns the field-wise sum of two Stats.
func (s Stats) Add(o Stats) Stats {
	s.CrashesInjected += o.CrashesInjected
	s.CrashesDetected += o.CrashesDetected
	s.FalseSuspicions += o.FalseSuspicions
	s.MessagesLost += o.MessagesLost
	s.MessagesDuplicated += o.MessagesDuplicated
	s.DuplicatesDropped += o.DuplicatesDropped
	s.MessagesBlocked += o.MessagesBlocked
	s.MessagesRetried += o.MessagesRetried
	s.HeartbeatsSent += o.HeartbeatsSent
	s.TasksReexecuted += o.TasksReexecuted
	s.TasksReplayed += o.TasksReplayed
	s.ObjectsRebuilt += o.ObjectsRebuilt
	s.WorkersJoined += o.WorkersJoined
	s.WorkersDrained += o.WorkersDrained
	s.RecoveryTime += o.RecoveryTime
	return s
}

// rng is a splitmix64 generator: tiny, deterministic, and consumed strictly
// in simulation event order, so every run of the same plan draws the same
// sequence.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// Network wraps a netmodel.Network with fault injection. It implements
// netmodel.Network — Send delivers reliably (for fault-unaware callers) —
// but the executor's data plane uses TrySend, which reports whether the
// individual attempt was delivered so the caller can retry.
//
// Stats semantics: the wrapper's Stats() counts *logical* messages — each
// delivered message once per link, no matter how many retransmissions or
// duplicates it took — while the wire-level attempt counts (every
// transmission, including lost sends and duplicates) remain on the inner
// network, available via WireStats. This is the contract the executor's
// ack/retry layer relies on: retried sends are counted once in ByLink.
type Network struct {
	inner     netmodel.Network
	eng       *sim.Engine
	plan      Plan
	rng       rng
	killed    []bool
	nextSeq   map[netmodel.Link]uint64
	delivered map[netmodel.Link]map[uint64]bool
	logical   netmodel.Stats
	stats     Stats
}

// Wrap builds a faulty view of inner for a platform of n machines. The plan
// must already be validated.
func Wrap(inner netmodel.Network, eng *sim.Engine, plan Plan, n int) *Network {
	return &Network{
		inner:     inner,
		eng:       eng,
		plan:      plan,
		rng:       rng{state: uint64(plan.Seed)*2654435761 + 0x9e3779b9},
		killed:    make([]bool, n),
		nextSeq:   map[netmodel.Link]uint64{},
		delivered: map[netmodel.Link]map[uint64]bool{},
	}
}

// Kill fences machine m: from now on it neither sends nor receives. The
// executor calls it both for scripted crashes and for detector fencing.
func (f *Network) Kill(m int) { f.killed[m] = true }

// Dead reports whether machine m has been killed.
func (f *Network) Dead(m int) bool { return f.killed[m] }

func (f *Network) partitioned(src, dst int) bool {
	now := time.Duration(f.eng.Now())
	for _, pt := range f.plan.Partitions {
		if ((pt.A == src && pt.B == dst) || (pt.A == dst && pt.B == src)) &&
			now >= pt.From && now < pt.To {
			return true
		}
	}
	return false
}

// TrySend attempts one transmission of size bytes from src to dst and
// reports whether it was delivered. A dead source transmits nothing (no wire
// cost); otherwise the bytes occupy the wire — charged on the inner network
// — and may then be swallowed by a dead destination, a partition, or random
// loss. A delivered message gets a per-link sequence number; an injected
// duplicate crosses the wire again and is dropped by the receiver's
// sequence-number filter.
func (f *Network) TrySend(p *sim.Proc, src, dst, size int) bool {
	if src == dst {
		return true
	}
	if f.killed[src] {
		return false
	}
	f.inner.Send(p, src, dst, size)
	if f.killed[dst] || f.partitioned(src, dst) {
		f.stats.MessagesBlocked++
		return false
	}
	if f.plan.LossRate > 0 && f.rng.float64() < f.plan.LossRate {
		f.stats.MessagesLost++
		return false
	}
	link := netmodel.Link{Src: src, Dst: dst}
	seq := f.nextSeq[link]
	f.nextSeq[link] = seq + 1
	f.addLogical(link, size)
	if f.plan.DupRate > 0 && f.rng.float64() < f.plan.DupRate {
		// The duplicate really crosses the wire; the receiver has already
		// recorded seq as delivered, so the copy is idempotently discarded.
		f.stats.MessagesDuplicated++
		f.inner.Send(p, src, dst, size)
		if f.delivered[link][seq] {
			f.stats.DuplicatesDropped++
		}
	}
	return true
}

func (f *Network) addLogical(link netmodel.Link, size int) {
	f.logical.Messages++
	f.logical.Bytes += int64(size)
	if f.logical.ByLink == nil {
		f.logical.ByLink = map[netmodel.Link]netmodel.LinkStats{}
	}
	ls := f.logical.ByLink[link]
	ls.Messages++
	ls.Bytes += int64(size)
	f.logical.ByLink[link] = ls
	dl := f.delivered[link]
	if dl == nil {
		dl = map[uint64]bool{}
		f.delivered[link] = dl
	}
	dl[f.nextSeq[link]-1] = true
}

// Send implements netmodel.Network by delivering reliably: it retries
// internally until the message gets through. Fault-aware callers should use
// TrySend and own their retry policy; Send exists so the wrapper is a
// drop-in Network. Sending from or to a dead machine is a no-op.
func (f *Network) Send(p *sim.Proc, src, dst, size int) {
	if src == dst || f.killed[src] || f.killed[dst] {
		return
	}
	for !f.TrySend(p, src, dst, size) {
		if f.killed[src] || f.killed[dst] {
			return
		}
	}
}

// Stats implements netmodel.Network with logical-message semantics: each
// delivered message counts once per link regardless of retries and
// duplicates. See WireStats for raw attempts.
func (f *Network) Stats() netmodel.Stats {
	s := f.logical
	if f.logical.ByLink != nil {
		s.ByLink = make(map[netmodel.Link]netmodel.LinkStats, len(f.logical.ByLink))
		for k, v := range f.logical.ByLink {
			s.ByLink[k] = v
		}
	}
	s.BusyTime = f.inner.Stats().BusyTime
	return s
}

// WireStats returns the inner network's counters: every transmission
// attempt, including lost sends and injected duplicates.
func (f *Network) WireStats() netmodel.Stats { return f.inner.Stats() }

// FaultStats returns the injection-side counters.
func (f *Network) FaultStats() Stats { return f.stats }

var _ netmodel.Network = (*Network)(nil)
