package fault

import (
	"testing"
	"time"
)

// TestDefaultCadenceMatchesConstants is the drift guard for the single
// source of truth: every consumer of the detector cadence (the simulated
// executor and the live TCP transport) goes through DefaultCadence, and
// this test pins that the struct and the exported constants agree.
func TestDefaultCadenceMatchesConstants(t *testing.T) {
	c := DefaultCadence()
	if c.HeartbeatInterval != DefaultHeartbeatInterval {
		t.Errorf("HeartbeatInterval = %v, want %v", c.HeartbeatInterval, DefaultHeartbeatInterval)
	}
	if c.HeartbeatTimeout != DefaultHeartbeatTimeout {
		t.Errorf("HeartbeatTimeout = %v, want %v", c.HeartbeatTimeout, DefaultHeartbeatTimeout)
	}
	if c.HeartbeatRetries != DefaultHeartbeatRetries {
		t.Errorf("HeartbeatRetries = %d, want %d", c.HeartbeatRetries, DefaultHeartbeatRetries)
	}
	if c.RetryBackoff != DefaultRetryBackoff {
		t.Errorf("RetryBackoff = %v, want %v", c.RetryBackoff, DefaultRetryBackoff)
	}
}

func TestCadenceScaledAndDeadline(t *testing.T) {
	c := DefaultCadence().Scaled(50)
	if c.HeartbeatInterval != 50*DefaultHeartbeatInterval {
		t.Errorf("scaled interval = %v, want %v", c.HeartbeatInterval, 50*DefaultHeartbeatInterval)
	}
	if c.HeartbeatRetries != DefaultHeartbeatRetries {
		t.Errorf("scaling must not touch the retry count: got %d", c.HeartbeatRetries)
	}
	want := c.HeartbeatInterval + c.HeartbeatTimeout*(1<<c.HeartbeatRetries)
	if got := c.Deadline(); got != want {
		t.Errorf("Deadline() = %v, want %v", got, want)
	}
	if DefaultCadence().Deadline() <= 0 {
		t.Error("default deadline must be positive")
	}
	_ = time.Millisecond
}
