package fault

import (
	"testing"
	"time"

	"repro/internal/netmodel"
	"repro/internal/sim"
)

func testNet(n int, plan Plan) (*sim.Engine, *Network) {
	eng := sim.New()
	inner := netmodel.SharedBus{Latency: 100 * time.Microsecond, Bandwidth: 1e6}.Instantiate(eng, n)
	return eng, Wrap(inner, eng, plan, n)
}

// drive runs fn as a simulated process and completes the simulation.
func drive(t *testing.T, eng *sim.Engine, fn func(p *sim.Proc)) {
	t.Helper()
	eng.Spawn("driver", fn)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"empty", Plan{}, true},
		{"normal crash", Plan{Crashes: []Crash{{Machine: 2, At: time.Second}}}, true},
		{"machine zero", Plan{Crashes: []Crash{{Machine: 0}}}, false},
		{"out of range", Plan{Crashes: []Crash{{Machine: 8}}}, false},
		{"double crash", Plan{Crashes: []Crash{{Machine: 1}, {Machine: 1, At: time.Second}}}, false},
		{"negative time", Plan{Crashes: []Crash{{Machine: 1, At: -time.Second}}}, false},
		{"loss too high", Plan{LossRate: 0.95}, false},
		{"dup negative", Plan{DupRate: -0.1}, false},
		{"partition ok", Plan{Partitions: []Partition{{A: 0, B: 3, From: 0, To: time.Second}}}, true},
		{"partition self", Plan{Partitions: []Partition{{A: 2, B: 2, To: time.Second}}}, false},
		{"partition empty window", Plan{Partitions: []Partition{{A: 0, B: 1, From: 2 * time.Second, To: time.Second}}}, false},
	} {
		err := tc.plan.Validate(8)
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	var nilPlan *Plan
	if nilPlan.Active() {
		t.Error("nil plan reports active")
	}
	if err := nilPlan.Validate(4); err != nil {
		t.Errorf("nil plan Validate = %v", err)
	}
}

func TestFaultLossDeterministic(t *testing.T) {
	outcomes := func(seed int64) ([]bool, Stats, netmodel.Stats, netmodel.Stats) {
		eng, fn := testNet(4, Plan{LossRate: 0.3, Seed: seed})
		var got []bool
		drive(t, eng, func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				got = append(got, fn.TrySend(p, 0, 1+i%3, 100))
			}
		})
		return got, fn.FaultStats(), fn.Stats(), fn.WireStats()
	}
	a1, fs1, log1, wire1 := outcomes(5)
	a2, fs2, _, _ := outcomes(5)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed, different outcome at send %d", i)
		}
	}
	if fs1 != fs2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", fs1, fs2)
	}
	if fs1.MessagesLost == 0 {
		t.Fatal("loss rate 0.3 over 200 sends lost nothing")
	}
	delivered := 0
	for _, ok := range a1 {
		if ok {
			delivered++
		}
	}
	if log1.Messages != delivered {
		t.Fatalf("logical Messages = %d, want %d delivered", log1.Messages, delivered)
	}
	// Every attempt crossed the wire, delivered or not.
	if wire1.Messages != 200 {
		t.Fatalf("wire Messages = %d, want 200 attempts", wire1.Messages)
	}
}

func TestFaultDuplicatesDropped(t *testing.T) {
	eng, fn := testNet(2, Plan{DupRate: 0.5, Seed: 11})
	const n = 100
	drive(t, eng, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			if !fn.TrySend(p, 0, 1, 64) {
				t.Errorf("send %d lost with zero loss rate", i)
			}
		}
	})
	fs := fn.FaultStats()
	if fs.MessagesDuplicated == 0 {
		t.Fatal("dup rate 0.5 over 100 sends duplicated nothing")
	}
	if fs.DuplicatesDropped != fs.MessagesDuplicated {
		t.Fatalf("DuplicatesDropped = %d, want every duplicate (%d) idempotently dropped",
			fs.DuplicatesDropped, fs.MessagesDuplicated)
	}
	// Logical stats count each delivered message once; the duplicates appear
	// only at the wire level.
	link := netmodel.Link{Src: 0, Dst: 1}
	if got := fn.Stats().ByLink[link].Messages; got != n {
		t.Fatalf("logical ByLink Messages = %d, want %d", got, n)
	}
	if wire := fn.WireStats().Messages; wire != n+fs.MessagesDuplicated {
		t.Fatalf("wire Messages = %d, want %d + %d duplicates", wire, n, fs.MessagesDuplicated)
	}
}

// TestFaultRetriedSendsCountedOnce pins the Stats.ByLink contract the
// executor's ack/retry layer relies on: a message that takes several
// transmission attempts still counts once per link in the wrapper's logical
// stats, while every attempt is charged on the wire.
func TestFaultRetriedSendsCountedOnce(t *testing.T) {
	eng, fn := testNet(2, Plan{LossRate: 0.4, Seed: 3})
	const n = 50
	attempts := 0
	drive(t, eng, func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			for {
				attempts++
				if fn.TrySend(p, 0, 1, 128) {
					break
				}
			}
		}
	})
	link := netmodel.Link{Src: 0, Dst: 1}
	if got := fn.Stats().ByLink[link].Messages; got != n {
		t.Fatalf("logical ByLink Messages = %d, want %d (retries must not double-count)", got, n)
	}
	if got := fn.Stats().Bytes; got != int64(n*128) {
		t.Fatalf("logical Bytes = %d, want %d", got, n*128)
	}
	if attempts <= n {
		t.Fatalf("expected retries with loss rate 0.4, got %d attempts for %d messages", attempts, n)
	}
	if wire := fn.WireStats().Messages; wire != attempts {
		t.Fatalf("wire Messages = %d, want %d attempts", wire, attempts)
	}
}

func TestFaultPartitionWindow(t *testing.T) {
	eng, fn := testNet(3, Plan{Partitions: []Partition{
		{A: 0, B: 1, From: 10 * time.Millisecond, To: 20 * time.Millisecond},
	}})
	drive(t, eng, func(p *sim.Proc) {
		if !fn.TrySend(p, 0, 1, 10) {
			t.Error("send before the window blocked")
		}
		p.Sleep(12 * time.Millisecond)
		if fn.TrySend(p, 0, 1, 10) {
			t.Error("send inside the window delivered")
		}
		if fn.TrySend(p, 1, 0, 10) {
			t.Error("partition is bidirectional; reverse send delivered")
		}
		if !fn.TrySend(p, 0, 2, 10) {
			t.Error("partition of (0,1) blocked the (0,2) link")
		}
		p.Sleep(10 * time.Millisecond)
		if !fn.TrySend(p, 0, 1, 10) {
			t.Error("send after the window blocked")
		}
	})
	if fs := fn.FaultStats(); fs.MessagesBlocked != 2 {
		t.Fatalf("MessagesBlocked = %d, want 2", fs.MessagesBlocked)
	}
}

func TestFaultKillSemantics(t *testing.T) {
	eng, fn := testNet(3, Plan{})
	drive(t, eng, func(p *sim.Proc) {
		if !fn.TrySend(p, 0, 1, 50) {
			t.Error("healthy send failed")
		}
		fn.Kill(1)
		if !fn.Dead(1) {
			t.Error("Kill(1) not reflected by Dead")
		}
		wireBefore := fn.WireStats().Messages
		// A dead source transmits nothing: no wire charge.
		if fn.TrySend(p, 1, 2, 50) {
			t.Error("dead source delivered")
		}
		if fn.WireStats().Messages != wireBefore {
			t.Error("dead source still charged the wire")
		}
		// A dead destination swallows the bytes after they crossed the wire.
		if fn.TrySend(p, 0, 1, 50) {
			t.Error("send to dead machine delivered")
		}
		if fn.WireStats().Messages != wireBefore+1 {
			t.Error("send to dead machine did not occupy the wire")
		}
		// The reliable Send is a no-op on dead endpoints (no infinite retry).
		fn.Send(p, 0, 1, 50)
		fn.Send(p, 1, 2, 50)
	})
	// Only the send to the dead destination counts as blocked: a dead source
	// transmits nothing at all.
	if fs := fn.FaultStats(); fs.MessagesBlocked != 1 {
		t.Fatalf("MessagesBlocked = %d, want 1", fs.MessagesBlocked)
	}
}
