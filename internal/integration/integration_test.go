// Package integration sweeps every application across every execution
// substrate — the paper's headline portability claim ("There are no source
// code modifications required to port Jade applications between these
// platforms") plus its determinism claim, as one test matrix.
package integration

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/apps/barneshut"
	"repro/internal/apps/cholesky"
	"repro/internal/apps/pmake"
	"repro/internal/apps/video"
	"repro/internal/apps/water"
	"repro/jade"
)

// runtimesUnderTest builds one runtime per platform family.
func runtimesUnderTest(t *testing.T) map[string]func() *jade.Runtime {
	t.Helper()
	sim := func(p jade.Platform) func() *jade.Runtime {
		return func() *jade.Runtime {
			r, err := jade.NewSimulated(jade.SimConfig{Platform: p})
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
	}
	return map[string]func() *jade.Runtime{
		"smp-goroutines": func() *jade.Runtime { return jade.NewSMP(jade.SMPConfig{Procs: 4}) },
		"dash-4":         sim(jade.DASH(4)),
		"ipsc860-4":      sim(jade.IPSC860(4)),
		"mica-3":         sim(jade.Mica(3)),
		"workstations-4": sim(jade.Workstations(4)),
	}
}

func TestCholeskyEverywhere(t *testing.T) {
	m := cholesky.Symbolic(cholesky.GridLaplacian(5))
	want := m.Clone()
	cholesky.FactorSerial(want)
	for name, mk := range runtimesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			var jm *cholesky.JadeMatrix
			if err := r.Run(func(tk *jade.Task) {
				jm = cholesky.ToJade(tk, m, 1e-6)
				jm.Factor(tk)
			}); err != nil {
				t.Fatal(err)
			}
			got := cholesky.FromJade(r, jm)
			for j := 0; j < m.N; j++ {
				for k := range want.Cols[j] {
					if got.Cols[j][k] != want.Cols[j][k] {
						t.Fatalf("col %d[%d] differs", j, k)
					}
				}
			}
		})
	}
}

func TestSupernodalCholeskyEverywhere(t *testing.T) {
	m := cholesky.Symbolic(cholesky.GridLaplacian(5))
	bounds := cholesky.Supernodes(m, 3)
	want := m.Clone()
	cholesky.FactorSerialSupernodal(want, bounds)
	for name, mk := range runtimesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			r := mk()
			var js *cholesky.JadeSupernodal
			if err := r.Run(func(tk *jade.Task) {
				js = cholesky.ToJadeSupernodal(tk, m, bounds, 1e-6)
				js.Factor(tk)
			}); err != nil {
				t.Fatal(err)
			}
			got := cholesky.FromJadeSupernodal(r, js)
			for j := 0; j < m.N; j++ {
				for k := range want.Cols[j] {
					if got.Cols[j][k] != want.Cols[j][k] {
						t.Fatalf("col %d[%d] differs", j, k)
					}
				}
			}
		})
	}
}

func TestWaterEverywhere(t *testing.T) {
	cfg := water.Config{N: 64, Steps: 2, Tasks: 4, Seed: 3}
	want := water.RunSerial(cfg)
	for name, mk := range runtimesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			got, err := water.RunJade(mk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Pos {
				if got.Pos[i] != want.Pos[i] || got.Vel[i] != want.Vel[i] {
					t.Fatalf("state differs at %d", i)
				}
			}
			if got.Energy != want.Energy {
				t.Fatalf("energy %v vs %v", got.Energy, want.Energy)
			}
		})
	}
}

func TestBarnesHutEverywhere(t *testing.T) {
	cfg := barneshut.Config{N: 96, Steps: 1, Blocks: 4, Seed: 7}
	want := barneshut.RunSerial(cfg)
	for name, mk := range runtimesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			got, err := barneshut.RunJade(mk(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want.Pos {
				if got.Pos[i] != want.Pos[i] {
					t.Fatalf("pos differs at %d", i)
				}
			}
		})
	}
}

func TestMakeEverywhere(t *testing.T) {
	const src = "p: a.o b.o\n\tlink a.o b.o\na.o: a.c\n\tcc a.c\nb.o: b.c\n\tcc b.c\n"
	mf, err := pmake.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mkProject := func() *pmake.Project {
		p := pmake.NewProject()
		p.WriteFile("a.c", []byte("alpha"))
		p.WriteFile("b.c", []byte("beta"))
		return p
	}
	ref := mkProject()
	if _, err := pmake.BuildSerial(ref, mf, "p"); err != nil {
		t.Fatal(err)
	}
	for name, mk := range runtimesUnderTest(t) {
		t.Run(name, func(t *testing.T) {
			p := mkProject()
			if _, err := pmake.BuildJade(mk(), p, mf, "p", 1e-6); err != nil {
				t.Fatal(err)
			}
			for f, want := range ref.Files {
				if !bytes.Equal(p.Files[f], want) {
					t.Fatalf("file %s differs", f)
				}
			}
		})
	}
}

func TestVideoOnHRVSizes(t *testing.T) {
	cfg := video.Config{Frames: 6, FrameBytes: 256}
	want := video.RunSerial(cfg)
	for _, accels := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("hrv-%d", accels), func(t *testing.T) {
			r, err := jade.NewSimulated(jade.SimConfig{Platform: jade.HRV(accels)})
			if err != nil {
				t.Fatal(err)
			}
			got, err := video.RunJade(r, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for f := range want {
				if got.Checksums[f] != want[f] {
					t.Fatalf("frame %d differs", f)
				}
			}
		})
	}
}
