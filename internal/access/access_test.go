package access

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestModePredicates(t *testing.T) {
	m := Read | DeferredWrite
	if !m.Has(Read) || m.Has(Write) {
		t.Fatal("Has wrong")
	}
	if !m.HasAny(AnyWrite) {
		t.Fatal("HasAny(AnyWrite) should see DeferredWrite")
	}
	if m.Immediate() != Read {
		t.Fatalf("Immediate = %v", m.Immediate())
	}
	if m.Deferred() != DeferredWrite {
		t.Fatalf("Deferred = %v", m.Deferred())
	}
	if got := m.Promote(); got != Read|Write {
		t.Fatalf("Promote = %v, want rd|wr", got)
	}
}

func TestModeString(t *testing.T) {
	for _, tc := range []struct {
		m    Mode
		want string
	}{
		{0, "none"},
		{Read, "rd"},
		{Write, "wr"},
		{ReadWrite, "rd|wr"},
		{DeferredRead, "df_rd"},
		{Read | DeferredWrite, "rd|df_wr"},
	} {
		if got := tc.m.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.m, got, tc.want)
		}
	}
}

func TestConflictMatrix(t *testing.T) {
	// earlier mode -> later request -> conflict?
	cases := []struct {
		earlier Mode
		later   Mode
		want    bool
	}{
		{Read, Read, false},
		{Read, Write, true},
		{Write, Read, true},
		{Write, Write, true},
		{ReadWrite, Read, true},
		{DeferredRead, Write, true}, // deferred earlier reserves
		{DeferredWrite, Read, true}, // deferred earlier reserves
		{DeferredWrite, Write, true},
		{Read, DeferredWrite, false}, // deferred later gates nothing
		{Write, DeferredRead, false}, // deferred later gates nothing
		{Read, Read | DeferredWrite, false},
		{0, Write, false},
	}
	for _, tc := range cases {
		if got := tc.earlier.ConflictsWith(tc.later); got != tc.want {
			t.Errorf("%v.ConflictsWith(%v) = %v, want %v", tc.earlier, tc.later, got, tc.want)
		}
	}
}

func TestCovers(t *testing.T) {
	cases := []struct {
		parent Mode
		child  Mode
		want   bool
	}{
		{ReadWrite, Read, true},
		{ReadWrite, Write, true},
		{Read, Write, false},
		{Write, Read, false}, // write alone does not grant read
		{DeferredRead, Read, true},
		{DeferredWrite, Write | DeferredWrite, true},
		{Read, DeferredRead, true},
		{0, Read, false},
		{ReadWrite | DeferredReadWrite, ReadWrite | DeferredReadWrite, true},
	}
	for _, tc := range cases {
		if got := tc.parent.Covers(tc.child); got != tc.want {
			t.Errorf("%v.Covers(%v) = %v, want %v", tc.parent, tc.child, got, tc.want)
		}
	}
}

func TestSpecDeclareAndMode(t *testing.T) {
	s := NewSpec()
	if s.Mode(1) != 0 {
		t.Fatal("fresh spec should have no rights")
	}
	s.Declare(1, Read)
	s.Declare(1, DeferredWrite)
	if s.Mode(1) != Read|DeferredWrite {
		t.Fatalf("mode = %v", s.Mode(1))
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSpecZeroValueUsable(t *testing.T) {
	var s Spec
	s.Declare(7, Write)
	if s.Mode(7) != Write {
		t.Fatal("zero-value Spec should accept Declare")
	}
}

func TestSpecPromote(t *testing.T) {
	s := NewSpec()
	s.Declare(1, DeferredReadWrite)
	got := s.Promote(1, DeferredRead)
	if got != Read|DeferredWrite {
		t.Fatalf("after promoting df_rd: %v", got)
	}
	got = s.Promote(1, DeferredWrite)
	if got != ReadWrite {
		t.Fatalf("after promoting df_wr: %v", got)
	}
	// Promoting absent deferred bits is a no-op.
	if got := s.Promote(1, DeferredReadWrite); got != ReadWrite {
		t.Fatalf("idempotent promote: %v", got)
	}
}

func TestSpecRetract(t *testing.T) {
	s := NewSpec()
	s.Declare(1, ReadWrite|DeferredReadWrite)
	rest := s.Retract(1, AnyRead)
	if rest != Write|DeferredWrite {
		t.Fatalf("after no_rd: %v", rest)
	}
	rest = s.Retract(1, AnyWrite)
	if rest != 0 {
		t.Fatalf("after no_wr: %v", rest)
	}
	if s.Len() != 0 {
		t.Fatal("empty entry should be dropped")
	}
}

func TestSpecClone(t *testing.T) {
	s := NewSpec()
	s.Declare(1, Read)
	c := s.Clone()
	c.Declare(1, Write)
	if s.Mode(1) != Read {
		t.Fatal("clone aliases original")
	}
}

func TestSpecCovers(t *testing.T) {
	s := NewSpec()
	s.Declare(1, ReadWrite)
	s.Declare(2, DeferredRead)
	if err := s.Covers([]Decl{{1, Read}, {2, Read}}); err != nil {
		t.Fatalf("should cover: %v", err)
	}
	if err := s.Covers([]Decl{{2, Write}}); err == nil {
		t.Fatal("df_rd must not cover wr")
	}
	if err := s.Covers([]Decl{{3, Read}}); err == nil {
		t.Fatal("undeclared object must not be covered")
	}
	if err := s.Covers([]Decl{{3, Read}}); err != nil && !strings.Contains(err.Error(), "#3") {
		t.Fatalf("error should name the object: %v", err)
	}
}

func TestSpecObjectsIteration(t *testing.T) {
	s := NewSpec()
	s.Declare(1, Read)
	s.Declare(2, Write)
	seen := map[ObjectID]Mode{}
	s.Objects(func(o ObjectID, m Mode) { seen[o] = m })
	if len(seen) != 2 || seen[1] != Read || seen[2] != Write {
		t.Fatalf("iteration saw %v", seen)
	}
}

func TestQuickConflictConsistency(t *testing.T) {
	// Properties relating the conflict matrix to its definition.
	f := func(a, b uint8) bool {
		ea, lb := Mode(a)&0xf, Mode(b)&0xf
		got := ea.ConflictsWith(lb)
		want := (ea.HasAny(AnyWrite) && lb.HasAny(Read|Write)) ||
			(ea.HasAny(AnyRead) && lb.Has(Write))
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoversReflexive(t *testing.T) {
	// Any mode covers itself and anything it is a superset of (per kind).
	f := func(a uint8) bool {
		m := Mode(a) & 0xf
		return m.Covers(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPromoteKeepsKinds(t *testing.T) {
	// Promote never loses a kind of right: AnyRead before => AnyRead after.
	f := func(a uint8) bool {
		m := Mode(a) & 0xf
		p := m.Promote()
		if m.HasAny(AnyRead) != p.HasAny(AnyRead) {
			return false
		}
		if m.HasAny(AnyWrite) != p.HasAny(AnyWrite) {
			return false
		}
		return p.Deferred() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
