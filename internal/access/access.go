// Package access defines Jade access modes, access declarations and access
// specifications, along with the conflict rules between them.
//
// A Jade task declares, before it runs, how it will access each shared
// object (paper §2). The basic declarations are rd and wr; rd_wr is their
// combination. Deferred declarations (df_rd, df_wr; paper §4.2) reserve the
// task's serial position on an object without granting the right to access
// it immediately: the task must later convert the deferred declaration to an
// immediate one with a with-cont construct. no_rd and no_wr dynamically
// retract rights the task no longer needs.
package access

import (
	"fmt"
	"strings"
)

// ObjectID names a shared object. IDs are allocated by the runtime and are
// globally valid across machines (the paper's "globally valid identifier").
type ObjectID uint64

// NilObject is the zero ObjectID; no real object has it.
const NilObject ObjectID = 0

// Mode is a bit set describing rights held or requested on one object.
type Mode uint8

const (
	// Read is the immediate right to read the object.
	Read Mode = 1 << iota
	// Write is the immediate right to write the object.
	Write
	// DeferredRead reserves a future right to read (df_rd).
	DeferredRead
	// DeferredWrite reserves a future right to write (df_wr).
	DeferredWrite
	// Commute is the §4.3 "higher-level" declaration: the task will update
	// the object in a way that commutes with other such updates (e.g. an
	// accumulation). Tasks holding Commute on the same object may execute
	// in either order — neither orders before the other — but their actual
	// accesses are mutually exclusive (the runtime serializes the views).
	// Commute conflicts with plain reads and writes in both directions.
	Commute
)

// ReadWrite is the immediate rd_wr declaration.
const ReadWrite = Read | Write

// DeferredReadWrite reserves both future rights.
const DeferredReadWrite = DeferredRead | DeferredWrite

// AnyRead matches both immediate and deferred read rights.
const AnyRead = Read | DeferredRead

// AnyWrite matches both immediate and deferred write rights.
const AnyWrite = Write | DeferredWrite

// AnyUpdate matches every right that can change the object.
const AnyUpdate = Write | DeferredWrite | Commute

// Has reports whether m contains all bits of want.
func (m Mode) Has(want Mode) bool { return m&want == want }

// HasAny reports whether m contains any bit of want.
func (m Mode) HasAny(want Mode) bool { return m&want != 0 }

// Immediate returns the immediate rights contained in m (rights that gate
// the task's start).
func (m Mode) Immediate() Mode { return m & (Read | Write | Commute) }

// Deferred returns the deferred rights contained in m.
func (m Mode) Deferred() Mode { return m & (DeferredRead | DeferredWrite) }

// PromoteSelected converts the deferred bits of m selected by which into
// the corresponding immediate bits, leaving other bits alone (the with-cont
// rd/wr conversion applied to a held mode).
func (m Mode) PromoteSelected(which Mode) Mode {
	if which.HasAny(DeferredRead) && m.Has(DeferredRead) {
		m = (m &^ DeferredRead) | Read
	}
	if which.HasAny(DeferredWrite) && m.Has(DeferredWrite) {
		m = (m &^ DeferredWrite) | Write
	}
	return m
}

// Promote converts the deferred bits of m into the corresponding immediate
// bits (used when a with-cont converts df_rd/df_wr to rd/wr).
func (m Mode) Promote() Mode {
	p := m.Immediate()
	if m.Has(DeferredRead) {
		p |= Read
	}
	if m.Has(DeferredWrite) {
		p |= Write
	}
	return p
}

// String renders the mode using the paper's declaration names.
func (m Mode) String() string {
	if m == 0 {
		return "none"
	}
	var parts []string
	if m.Has(Read) {
		parts = append(parts, "rd")
	}
	if m.Has(Write) {
		parts = append(parts, "wr")
	}
	if m.Has(DeferredRead) {
		parts = append(parts, "df_rd")
	}
	if m.Has(DeferredWrite) {
		parts = append(parts, "df_wr")
	}
	if m.Has(Commute) {
		parts = append(parts, "cm")
	}
	return strings.Join(parts, "|")
}

// ConflictsWith reports whether rights held earlier in serial order (m)
// conflict with rights requested later (later). Writers conflict with
// everything; readers conflict with writers. Deferred rights held earlier
// reserve the serial position, so they conflict exactly as if immediate
// (paper §4.2: a later task must wait for an earlier deferred declaration
// to be retracted or the task to complete). Deferred bits in the LATER
// request do not conflict with anything — they only reserve a position and
// gate nothing until converted.
func (m Mode) ConflictsWith(later Mode) bool {
	earlierRead := m.HasAny(AnyRead)
	earlierWrite := m.HasAny(AnyWrite)
	earlierCommute := m.Has(Commute)
	laterRead := later.Has(Read)
	laterWrite := later.Has(Write)
	laterCommute := later.Has(Commute)
	if earlierWrite && (laterRead || laterWrite || laterCommute) {
		return true
	}
	if earlierRead && (laterWrite || laterCommute) {
		return true
	}
	// Commuting updates order freely among themselves but conflict with
	// everything else (§4.3): a plain read or write must see a definite
	// accumulation state.
	if earlierCommute && (laterRead || laterWrite) {
		return true
	}
	return false
}

// Covers reports whether rights m held by a parent are sufficient to grant a
// child declaration want (paper §4.4: a task's access specification must
// declare both its own accesses and those of all its child tasks). A
// parent's deferred right covers a child's immediate or deferred right of
// the same kind: the parent reserved the serial position, and the child
// occupies a sub-position of it.
func (m Mode) Covers(want Mode) bool {
	if want.HasAny(AnyRead) && !m.HasAny(AnyRead) {
		return false
	}
	if want.HasAny(AnyWrite) && !m.HasAny(AnyWrite) {
		return false
	}
	// A commuting child right is covered by a commuting or exclusive-write
	// parent right; a commuting parent right covers only commuting
	// children (it never held exclusivity to delegate).
	if want.Has(Commute) && !m.HasAny(Commute|AnyWrite) {
		return false
	}
	return true
}

// Decl is one access declaration: a mode requested on one object.
type Decl struct {
	Object ObjectID
	Mode   Mode
}

// String renders the declaration, e.g. "rd|wr(#12)".
func (d Decl) String() string { return fmt.Sprintf("%v(#%d)", d.Mode, d.Object) }

// Spec is a task's access specification: the set of rights it currently
// holds, one Mode per object. The zero Spec is empty and ready to use.
type Spec struct {
	modes map[ObjectID]Mode
}

// NewSpec returns an empty specification.
func NewSpec() *Spec { return &Spec{modes: make(map[ObjectID]Mode)} }

// Clone returns a deep copy of the specification.
func (s *Spec) Clone() *Spec {
	c := NewSpec()
	for o, m := range s.modes {
		c.modes[o] = m
	}
	return c
}

// Declare adds mode bits for an object (idempotent union).
func (s *Spec) Declare(o ObjectID, m Mode) {
	if s.modes == nil {
		s.modes = make(map[ObjectID]Mode)
	}
	s.modes[o] |= m
}

// Mode returns the rights currently held on o (0 if none).
func (s *Spec) Mode(o ObjectID) Mode {
	return s.modes[o]
}

// Promote converts deferred rights on o into immediate rights, returning the
// new mode. Promoting an object with no deferred rights is a no-op.
func (s *Spec) Promote(o ObjectID, which Mode) Mode {
	m := s.modes[o]
	if which.HasAny(DeferredRead) && m.Has(DeferredRead) {
		m = (m &^ DeferredRead) | Read
	}
	if which.HasAny(DeferredWrite) && m.Has(DeferredWrite) {
		m = (m &^ DeferredWrite) | Write
	}
	s.modes[o] = m
	return m
}

// Retract removes rights of the given kinds on o (no_rd removes Read and
// DeferredRead; no_wr removes Write and DeferredWrite). It returns the
// remaining mode; when that is zero the object is dropped from the spec.
func (s *Spec) Retract(o ObjectID, which Mode) Mode {
	m := s.modes[o] &^ which
	if m == 0 {
		delete(s.modes, o)
	} else {
		s.modes[o] = m
	}
	return m
}

// Objects calls f for every object with non-zero rights. Iteration order is
// unspecified.
func (s *Spec) Objects(f func(ObjectID, Mode)) {
	for o, m := range s.modes {
		f(o, m)
	}
}

// Len returns the number of objects with non-zero rights.
func (s *Spec) Len() int { return len(s.modes) }

// Covers reports whether s (a parent's current spec) covers every
// declaration in decls (a prospective child's spec).
func (s *Spec) Covers(decls []Decl) error {
	need := map[ObjectID]Mode{}
	for _, d := range decls {
		need[d.Object] |= d.Mode
	}
	for o, m := range need {
		if !s.modes[o].Covers(m) {
			return fmt.Errorf("access violation: child declares %v on object #%d but parent holds only %v",
				m, o, s.modes[o])
		}
	}
	return nil
}

// String renders the spec deterministically enough for error messages.
func (s *Spec) String() string {
	var parts []string
	for o, m := range s.modes {
		parts = append(parts, fmt.Sprintf("%v(#%d)", m, o))
	}
	return "{" + strings.Join(parts, " ") + "}"
}
