// Package seq implements the hierarchical serial sequence numbers that
// define the serial order of Jade tasks.
//
// Every Jade task is created at a particular point of the serial execution
// of the program. The serial order of two tasks is the order in which their
// bodies would run in a sequential (depth-first) execution: a task's body
// runs where the withonly-do construct appears, so the k-th child of a task
// t is ordered after t's code that precedes the construct and before t's
// code that follows it.
//
// We represent a task's position as a Dewey-decimal style path of child
// indices from the root. Comparisons between unrelated tasks are ordinary
// lexicographic comparisons. The subtle case is an ancestor against one of
// its own descendants: the ancestor's *residual* access rights (the code it
// has not executed yet) logically follow all accesses of the already-created
// descendant, so in queue order an ancestor sorts AFTER its descendants.
// See DESIGN.md §4 for why this yields exactly the serial semantics.
package seq

import (
	"fmt"
	"strings"
)

// Seq is a hierarchical serial sequence number. The root task has the empty
// Seq. Seq values are immutable once created; Child returns a fresh value.
type Seq struct {
	path []uint32
}

// Root returns the sequence number of the root task.
func Root() Seq { return Seq{} }

// Child returns the sequence number of the k-th child (k starts at 1) of s.
func (s Seq) Child(k uint32) Seq {
	p := make([]uint32, len(s.path)+1)
	copy(p, s.path)
	p[len(s.path)] = k
	return Seq{path: p}
}

// Depth returns the nesting depth; the root has depth 0.
func (s Seq) Depth() int { return len(s.path) }

// IsRoot reports whether s is the root sequence number.
func (s Seq) IsRoot() bool { return len(s.path) == 0 }

// Parent returns the sequence number of the parent task. Calling Parent on
// the root returns the root.
func (s Seq) Parent() Seq {
	if len(s.path) == 0 {
		return s
	}
	p := make([]uint32, len(s.path)-1)
	copy(p, s.path[:len(s.path)-1])
	return Seq{path: p}
}

// IsAncestorOf reports whether s is a proper ancestor of t.
func (s Seq) IsAncestorOf(t Seq) bool {
	if len(s.path) >= len(t.path) {
		return false
	}
	for i, v := range s.path {
		if t.path[i] != v {
			return false
		}
	}
	return true
}

// Compare totally orders sequence numbers by queue position:
//
//	-1 if s's accesses queue before t's,
//	 0 if s == t,
//	+1 if s's accesses queue after t's.
//
// For unrelated tasks this is lexicographic order (serial order). For an
// ancestor/descendant pair, the ancestor compares greater: the residual
// rights of the ancestor follow all rights of its descendants.
func (s Seq) Compare(t Seq) int {
	n := min(len(s.path), len(t.path))
	for i := 0; i < n; i++ {
		switch {
		case s.path[i] < t.path[i]:
			return -1
		case s.path[i] > t.path[i]:
			return +1
		}
	}
	switch {
	case len(s.path) == len(t.path):
		return 0
	case len(s.path) < len(t.path):
		// s is a proper ancestor of t: ancestor-residual sorts after.
		return +1
	default:
		return -1
	}
}

// Less reports whether s orders strictly before t in queue position.
func (s Seq) Less(t Seq) bool { return s.Compare(t) < 0 }

// String renders the sequence number as a dotted path, e.g. "3.1.2"; the
// root renders as "root".
func (s Seq) String() string {
	if len(s.path) == 0 {
		return "root"
	}
	parts := make([]string, len(s.path))
	for i, v := range s.path {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ".")
}
