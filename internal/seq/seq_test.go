package seq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestRootProperties(t *testing.T) {
	r := Root()
	if !r.IsRoot() {
		t.Fatal("Root().IsRoot() = false")
	}
	if r.Depth() != 0 {
		t.Fatalf("Root depth = %d, want 0", r.Depth())
	}
	if r.String() != "root" {
		t.Fatalf("Root string = %q", r.String())
	}
	if r.Parent().Compare(r) != 0 {
		t.Fatal("Parent of root should be root")
	}
}

func TestChildAndParent(t *testing.T) {
	r := Root()
	c3 := r.Child(3)
	if c3.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", c3.Depth())
	}
	if c3.String() != "3" {
		t.Fatalf("string = %q, want 3", c3.String())
	}
	g := c3.Child(1).Child(2)
	if g.String() != "3.1.2" {
		t.Fatalf("string = %q, want 3.1.2", g.String())
	}
	if g.Parent().String() != "3.1" {
		t.Fatalf("parent = %q, want 3.1", g.Parent().String())
	}
}

func TestChildDoesNotAliasParent(t *testing.T) {
	r := Root()
	a := r.Child(1)
	b := a.Child(1)
	c := a.Child(2)
	// b and c share a as a parent; creating c must not corrupt b.
	if b.String() != "1.1" || c.String() != "1.2" {
		t.Fatalf("aliasing: b=%q c=%q", b, c)
	}
}

func TestSiblingOrder(t *testing.T) {
	r := Root()
	a, b := r.Child(1), r.Child(2)
	if !a.Less(b) || b.Less(a) {
		t.Fatal("sibling order wrong")
	}
	if a.Compare(a) != 0 {
		t.Fatal("self compare != 0")
	}
}

func TestAncestorResidualRule(t *testing.T) {
	// An ancestor's residual rights order AFTER all of its descendants.
	p := Root().Child(3)
	c := p.Child(1)
	g := c.Child(7)
	for _, tc := range []struct{ lo, hi Seq }{
		{c, p}, {g, p}, {g, c},
		{Root().Child(2), p},          // earlier sibling before p
		{p, Root().Child(4)},          // p before later sibling
		{g, Root().Child(4)},          // deep descendant before p's later sibling
		{Root().Child(2).Child(9), p}, // descendant of earlier sibling, before p
		{c, Root()},                   // everything before root residual
		{p, Root()},
	} {
		if !tc.lo.Less(tc.hi) {
			t.Errorf("%v should order before %v", tc.lo, tc.hi)
		}
		if tc.hi.Less(tc.lo) {
			t.Errorf("%v should not order before %v", tc.hi, tc.lo)
		}
	}
}

func TestIsAncestorOf(t *testing.T) {
	r := Root()
	p := r.Child(3)
	c := p.Child(1)
	if !r.IsAncestorOf(p) || !r.IsAncestorOf(c) || !p.IsAncestorOf(c) {
		t.Fatal("ancestor relations missing")
	}
	if p.IsAncestorOf(p) {
		t.Fatal("proper ancestor should exclude self")
	}
	if c.IsAncestorOf(p) {
		t.Fatal("descendant is not ancestor")
	}
	if r.Child(2).IsAncestorOf(p.Child(4)) {
		t.Fatal("sibling subtree is not ancestor")
	}
}

// randomSeq builds a random sequence number of depth <= 4.
func randomSeq(rng *rand.Rand) Seq {
	s := Root()
	d := rng.Intn(5)
	for i := 0; i < d; i++ {
		s = s.Child(uint32(rng.Intn(5) + 1))
	}
	return s
}

func TestCompareIsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	seqs := make([]Seq, 200)
	for i := range seqs {
		seqs[i] = randomSeq(rng)
	}
	// Antisymmetry and reflexivity.
	for _, a := range seqs[:50] {
		for _, b := range seqs[:50] {
			ab, ba := a.Compare(b), b.Compare(a)
			if ab != -ba {
				t.Fatalf("Compare not antisymmetric: %v vs %v: %d, %d", a, b, ab, ba)
			}
			if ab == 0 && a.String() != b.String() {
				t.Fatalf("Compare==0 for distinct %v, %v", a, b)
			}
		}
	}
	// Transitivity via sort: sorting must not panic and must be consistent.
	sort.Slice(seqs, func(i, j int) bool { return seqs[i].Less(seqs[j]) })
	for i := 1; i < len(seqs); i++ {
		if seqs[i].Less(seqs[i-1]) {
			t.Fatalf("sort inconsistency at %d: %v < %v", i, seqs[i], seqs[i-1])
		}
	}
}

func TestQuickDescendantBeforeAncestor(t *testing.T) {
	// Property: for any sequence s and any chain of children below it, the
	// descendant orders strictly before s.
	f := func(branches []uint8) bool {
		s := Root().Child(2)
		d := s
		if len(branches) == 0 {
			return true
		}
		for _, b := range branches {
			d = d.Child(uint32(b%7) + 1)
		}
		return d.Less(s) && !s.Less(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCreationOrderIsSerialOrder(t *testing.T) {
	// Property: children of the same parent order by creation index, and
	// anything in child k's subtree orders before child k+1's subtree.
	f := func(i, j uint8, sub []uint8) bool {
		k1 := uint32(i%100) + 1
		k2 := k1 + uint32(j%100) + 1
		p := Root().Child(1)
		a := p.Child(k1)
		b := p.Child(k2)
		deep := a
		for _, s := range sub {
			deep = deep.Child(uint32(s%3) + 1)
		}
		return a.Less(b) && deep.Less(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
