// Hierarchical concurrency (§4.4): withonly-do constructs nest fully
// recursively, and a parent's access specification must cover everything
// its descendants declare. This divide-and-conquer sum gives every tree
// node its own result object; a task declares rd on the data plus rd_wr on
// every result cell in its subtree (covering its children), splits the
// range between two child tasks — which run in parallel because their
// subtree declarations are disjoint — and then combines their results,
// blocking on its own descendants automatically.
//
//	go run ./examples/nested
package main

import (
	"fmt"

	"repro/jade"
)

const (
	n      = 1 << 14
	cutoff = 1 << 10
)

// subtree calls f for every node id in the binary subtree rooted at node
// whose range is [lo, hi).
func subtree(lo, hi, node int, f func(node int)) {
	f(node)
	if hi-lo <= cutoff {
		return
	}
	mid := (lo + hi) / 2
	subtree(lo, mid, 2*node+1, f)
	subtree(mid, hi, 2*node+2, f)
}

// sumRange is one task body: directly sum small ranges; otherwise fork two
// covered children and combine their results.
func sumRange(t *jade.Task, data *jade.Array[int64], cells []*jade.Scalar[int64], lo, hi, node int) {
	if hi-lo <= cutoff {
		v := data.Read(t)
		var s int64
		for _, x := range v[lo:hi] {
			s += x
		}
		data.Release(t)
		cells[node].Set(t, s)
		return
	}
	mid := (lo + hi) / 2
	for _, half := range []struct{ lo, hi, node int }{
		{lo, mid, 2*node + 1},
		{mid, hi, 2*node + 2},
	} {
		half := half
		t.WithOnlyOpts(jade.TaskOptions{Label: fmt.Sprintf("sum[%d:%d]", half.lo, half.hi)},
			func(s *jade.Spec) {
				s.Rd(data)
				// Declare the whole subtree's cells: this covers whatever
				// the child (and its descendants) will declare (§4.4).
				subtree(half.lo, half.hi, half.node, func(nd int) { s.RdWr(cells[nd]) })
			},
			func(t *jade.Task) {
				sumRange(t, data, cells, half.lo, half.hi, half.node)
			})
	}
	// Combine. Reading the children's cells blocks until those descendant
	// tasks complete — the join is implicit in the serial semantics.
	left := cells[2*node+1].Get(t)
	right := cells[2*node+2].Get(t)
	cells[node].Set(t, left+right)
}

func main() {
	rt := jade.NewSMP(jade.SMPConfig{Procs: 4})
	var total, want int64
	err := rt.Run(func(t *jade.Task) {
		raw := make([]int64, n)
		for i := range raw {
			raw[i] = int64(i%7 - 3)
			want += raw[i]
		}
		data := jade.NewArrayFrom(t, raw, "data")
		cells := make([]*jade.Scalar[int64], 64)
		for i := range cells {
			cells[i] = jade.NewScalar[int64](t, 0, fmt.Sprintf("cell%d", i))
		}
		t.WithOnly(func(s *jade.Spec) {
			s.Rd(data)
			subtree(0, n, 0, func(nd int) { s.RdWr(cells[nd]) })
		}, func(t *jade.Task) {
			sumRange(t, data, cells, 0, n, 0)
		})
		// Reading cell 0 waits for the entire tree (serial semantics).
		total = cells[0].Get(t)
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("recursive parallel sum = %d (want %d) over %d tasks\n",
		total, want, rt.Report().Tasks.Created)
	if total != want {
		panic("wrong sum")
	}
}
