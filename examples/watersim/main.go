// The paper's LWS liquid water simulation (§7.3) on all three simulated
// evaluation platforms — a miniature of Figures 9 and 10.
//
//	go run ./examples/watersim
package main

import (
	"fmt"

	"repro/internal/apps/water"
	"repro/jade"
)

func main() {
	const machines = 8
	cfg := water.Config{N: 729, Steps: 2, Tasks: machines, Seed: 1992, WorkPerFlop: 1e-7}

	serial := water.RunSerial(cfg)
	fmt.Printf("serial reference: potential energy %.6f\n\n", serial.Energy)

	for _, pc := range []struct {
		name string
		plat jade.Platform
	}{
		{"Stanford DASH (shared memory)", jade.DASH(machines)},
		{"Intel iPSC/860 (hypercube)", jade.IPSC860(machines)},
		{"Mica (workstations on Ethernet)", jade.Mica(machines)},
	} {
		rt, err := jade.NewSimulated(jade.SimConfig{Platform: pc.plat})
		if err != nil {
			panic(err)
		}
		got, err := water.RunJade(rt, cfg)
		if err != nil {
			panic(err)
		}
		match := "✓ identical to serial"
		if got.Energy != serial.Energy {
			match = "✗ DIVERGED"
		}
		fmt.Printf("%-34s %2d machines: %8v   energy %.6f %s\n",
			pc.name, machines, rt.Makespan(), got.Energy, match)
	}
	fmt.Println("\nsame program, no source changes — only the platform differs (the paper's portability claim)")
}
