// The paper's digital image processing pipeline (§7.2) on the simulated HRV
// workstation: a SPARC host captures frames, i860 accelerators decompress,
// transform and display them. Jade moves each frame between the machines —
// converting between big- and little-endian representations — with no
// message-passing code in the application.
//
//	go run ./examples/videopipe
package main

import (
	"fmt"

	"repro/internal/apps/video"
	"repro/jade"
)

func main() {
	cfg := video.Config{Frames: 24, FrameBytes: 2048, CaptureWork: 0.004, TransformWork: 0.05}
	want := video.RunSerial(cfg)

	for _, accels := range []int{1, 2, 4} {
		rt, err := jade.NewSimulated(jade.SimConfig{Platform: jade.HRV(accels), Trace: true})
		if err != nil {
			panic(err)
		}
		res, err := video.RunJade(rt, cfg)
		if err != nil {
			panic(err)
		}
		for f := range want {
			if res.Checksums[f] != want[f] {
				panic(fmt.Sprintf("frame %d corrupted", f))
			}
		}
		rep := rt.Report()
		fps := float64(cfg.Frames) / rep.Makespan.Seconds()
		fmt.Printf("%d accelerator(s): %6.1f frames/s  makespan %8v  msgs %3d  format-converted words %d\n",
			accels, fps, rep.Makespan, rep.Net.Messages, rep.ConvertedWords)
	}
	fmt.Println("\nall frames verified against the serial pipeline ✓")
}
