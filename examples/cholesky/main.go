// Sparse Cholesky factorization — the paper's running example (§3), plus
// the §4.2 pipelined back-substitution. The same Jade program runs here on
// a simulated Intel iPSC/860 and, unmodified, on the shared-memory
// executor; both produce results bitwise-identical to the serial algorithm.
//
//	go run ./examples/cholesky
package main

import (
	"fmt"
	"math"

	"repro/internal/apps/cholesky"
	"repro/jade"
)

func main() {
	// A 12x12 grid Laplacian (144 unknowns) with symbolic fill.
	orig := cholesky.GridLaplacian(12)
	m := cholesky.Symbolic(orig)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = math.Sin(float64(i))
	}

	run := func(name string, rt *jade.Runtime) []float64 {
		var jm *cholesky.JadeMatrix
		var x *jade.Array[float64]
		err := rt.Run(func(t *jade.Task) {
			jm = cholesky.ToJade(t, m, 2e-6)
			x = jade.NewArrayFrom(t, append([]float64(nil), b...), "x")
			jm.Factor(t)                // Figure 6: internal/external update tasks
			jm.ForwardSolve(t, x, true) // §4.2: deferred reads pipeline the solve
		})
		if err != nil {
			panic(err)
		}
		rep := rt.Report()
		fmt.Printf("%-22s tasks=%-5d makespan=%v\n",
			name, rep.Tasks.Created, rep.Makespan)
		return jade.Final(rt, x)
	}

	simRT, err := jade.NewSimulated(jade.SimConfig{Platform: jade.IPSC860(8)})
	if err != nil {
		panic(err)
	}
	ySim := run("simulated iPSC/860-8:", simRT)
	ySMP := run("real shared-memory:", jade.NewSMP(jade.SMPConfig{Procs: 4}))

	// Both executions equal the serial forward solve exactly.
	serial := m.Clone()
	cholesky.FactorSerial(serial)
	y := append([]float64(nil), b...)
	cholesky.ForwardSolveSerial(serial, y)
	for i := range y {
		if ySim[i] != y[i] || ySMP[i] != y[i] {
			panic(fmt.Sprintf("results diverged at %d", i))
		}
	}
	fmt.Println("all three executions produced bitwise-identical solves ✓")
}
