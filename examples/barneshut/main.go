// Barnes-Hut N-body — one of the paper's computational kernels (§7). Each
// timestep builds an octree serially, then force tasks over body blocks run
// in parallel (rd on the flattened tree, rd_wr on their acceleration
// block). The tree's shape — and therefore the work — depends on the
// evolving body distribution: dynamic, data-dependent concurrency.
//
//	go run ./examples/barneshut
package main

import (
	"fmt"
	"math"

	"repro/internal/apps/barneshut"
	"repro/jade"
)

func main() {
	cfg := barneshut.Config{N: 512, Steps: 3, Blocks: 8, Seed: 42, WorkPerFlop: 2e-7}.WithDefaults()
	serial := barneshut.RunSerial(cfg)

	// DASH: the octree broadcast is cheap on a shared-memory interconnect;
	// on a message-passing machine re-distributing the ~160KB tree every
	// step dominates at this problem size.
	for _, machines := range []int{1, 4, 8} {
		rt, err := jade.NewSimulated(jade.SimConfig{Platform: jade.DASH(machines)})
		if err != nil {
			panic(err)
		}
		got, err := barneshut.RunJade(rt, cfg)
		if err != nil {
			panic(err)
		}
		for i := range serial.Pos {
			if got.Pos[i] != serial.Pos[i] {
				panic(fmt.Sprintf("diverged from serial at %d", i))
			}
		}
		fmt.Printf("DASH %2d machines: makespan %12v   ✓ identical to serial\n",
			machines, rt.Makespan())
	}

	// Show the dynamic work imbalance BH produces: interaction counts per
	// block differ because the tree is deeper where bodies cluster.
	s := barneshut.NewState(cfg)
	ints, floats := barneshut.BuildTree(s.Pos, s.Mass, s.N)
	fmt.Println("\nper-block interaction counts (data-dependent work):")
	for b := 0; b < cfg.Blocks; b++ {
		lo := b * ((cfg.N + cfg.Blocks - 1) / cfg.Blocks)
		hi := int(math.Min(float64(lo+(cfg.N+cfg.Blocks-1)/cfg.Blocks), float64(cfg.N)))
		acc := make([]float64, 3*(hi-lo))
		n := barneshut.ForceBlock(ints, floats, s.Pos, s.Mass, cfg.Theta, lo, hi, acc)
		fmt.Printf("  block %d (bodies %3d..%3d): %6d interactions\n", b, lo, hi-1, n)
	}
}
