// Quickstart: the smallest useful Jade program.
//
// A serial program over two shared arrays is annotated with withonly-do
// constructs declaring each task's accesses; the runtime runs independent
// tasks in parallel and serializes conflicting ones, always producing the
// serial program's result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/jade"
)

func main() {
	// Real parallelism over the host's processors. Swap in
	// jade.NewSimulated(jade.SimConfig{Platform: jade.IPSC860(8)}) and the
	// same program runs on a simulated message-passing hypercube.
	rt := jade.NewSMP(jade.SMPConfig{Procs: 4})

	var result []float64
	err := rt.Run(func(t *jade.Task) {
		a := jade.NewArray[float64](t, 4, "a")
		b := jade.NewArray[float64](t, 4, "b")

		// Task 1: initialize a. (wr: it fully overwrites a.)
		t.WithOnly(func(s *jade.Spec) { s.Wr(a) }, func(t *jade.Task) {
			v := a.Write(t)
			for i := range v {
				v[i] = float64(i + 1)
			}
		})

		// Task 2: initialize b — no conflict with task 1, runs in parallel.
		t.WithOnly(func(s *jade.Spec) { s.Wr(b) }, func(t *jade.Task) {
			v := b.Write(t)
			for i := range v {
				v[i] = 10 * float64(i+1)
			}
		})

		// Task 3: a += b — conflicts with both, so it runs after them.
		// Nobody wrote any synchronization: the declarations are enough.
		t.WithOnly(func(s *jade.Spec) { s.RdWr(a); s.Rd(b) }, func(t *jade.Task) {
			av, bv := a.ReadWrite(t), b.Read(t)
			for i := range av {
				av[i] += bv[i]
			}
		})

		// The main program reads the result; Jade makes it wait for task 3.
		result = append(result, a.Read(t)...)
		a.Release(t)
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("a + b =", result) // always [11 22 33 44]
}
