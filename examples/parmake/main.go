// The paper's parallel make (§7.1) on a synthetic project: a full build,
// then an incremental rebuild after touching one source file and after
// touching a shared header.
//
//	go run ./examples/parmake
package main

import (
	"fmt"
	"strings"

	"repro/internal/apps/pmake"
	"repro/jade"
)

const makefile = `
# four objects and a program; util.h is shared by two of them
prog: a.o b.o c.o d.o
	link a.o b.o c.o d.o
a.o: a.c util.h
	cc a.c util.h
b.o: b.c util.h
	cc b.c util.h
c.o: c.c
	cc c.c
d.o: d.c
	cc d.c
`

func build(p *pmake.Project, mf *pmake.Makefile, what string) {
	rt, err := jade.NewSimulated(jade.SimConfig{Platform: jade.DASH(4)})
	if err != nil {
		panic(err)
	}
	rebuilt, err := pmake.BuildJade(rt, p, mf, "prog", 1e-5)
	if err != nil {
		panic(err)
	}
	if len(rebuilt) == 0 {
		fmt.Printf("%-28s nothing to do\n", what)
		return
	}
	fmt.Printf("%-28s rebuilt [%s] in %v on 4 machines\n", what, strings.Join(rebuilt, " "), rt.Makespan())
}

func main() {
	mf, err := pmake.Parse(makefile)
	if err != nil {
		panic(err)
	}
	p := pmake.NewProject()
	for _, src := range []string{"a.c", "b.c", "c.c", "d.c"} {
		p.WriteFile(src, []byte(strings.Repeat(src+" code;\n", 200)))
	}
	p.WriteFile("util.h", []byte("#pragma once\n"))

	build(p, mf, "full build:")
	build(p, mf, "nothing changed:")
	p.Touch("c.c")
	build(p, mf, "touch c.c:")
	p.Touch("util.h")
	build(p, mf, "touch util.h (shared):")
	fmt.Println("\nconcurrency depends on the makefile and modification dates — dynamic, as §7.1 observes")
}
