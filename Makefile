# Verification tiers for the Jade reproduction. `make check` is what CI (and
# every PR) must pass: static checks, the full test suite, and the
# race-hardened concurrency tier over the packages that do real parallelism.

GO ?= go

.PHONY: check vet build test race determinism fault live live-fault tenant obs bench live-bench tenant-bench serve-bench clean

check: vet build test race determinism fault live live-fault tenant obs bench live-bench tenant-bench serve-bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency tier: the dependency engine, both executors and the public
# API under the race detector, twice, to shake out schedule-dependent bugs
# in the sharded (per-object-lock) engine.
race:
	$(GO) test -race -count=2 ./internal/core/... ./internal/exec/... ./jade/...

# The determinism tier: simulated runs must produce bit-identical makespans,
# byte counts and traces across repeated runs — the property every golden
# count in the test suite rests on.
determinism:
	$(GO) test -run Determin -count=2 ./internal/sim/... ./internal/exec/dist/...

# The fault tier: failure injection, detection and deterministic recovery,
# under the race detector — crashes, loss, duplication and partitions must
# leave every application bit-identical to its failure-free run.
fault:
	$(GO) test -race -count=2 -run Fault ./internal/fault/... ./internal/exec/dist/... ./jade/... ./internal/experiments/...

# The live tier: the message-passing transports (inproc pipes, TCP framing
# with reconnect and heartbeats), the wire codec, and the live executor —
# real concurrency over real sockets, under the race detector, twice.
live:
	$(GO) test -race -count=2 ./internal/transport/... ./internal/exec/live/...

# The live-fault tier: fault tolerance and elastic membership on the live
# executor — session fencing, chaos-scripted kills/drains/joins, and the L2
# experiment (mid-run kill + joins, bit-identical to the serial oracle) —
# under the race detector, twice (DESIGN.md §4.13).
live-fault:
	$(GO) test -race -count=2 -run 'Chaos|Fence|Redial|Session|Cadence|Elastic|Membership|Leave|Evict|Drain|Admit|L2' ./internal/transport/... ./internal/exec/live/... ./internal/fault/... ./internal/experiments/...

# The tenant tier: the multi-tenant session service — session mux and
# namespace isolation on the wire, admission control and per-tenant slot
# quotas, cross-tenant isolation properties, chaos-scripted daemon kills
# with sessions from several tenants resident, and the MT1 experiment —
# under the race detector, twice (DESIGN.md §4.15).
tenant:
	$(GO) test -race -count=2 -run 'Tenant|Mux|MultiServ|Service|SlotStats|MT1' ./internal/transport/mux/... ./internal/exec/live/... ./jade/... ./internal/experiments/...

# The obs tier: the observability subsystem — trace export determinism and
# structure, histogram merging, the Prometheus endpoint, ring sizing, the
# serving workload and an SV1 smoke at low rate — under the race detector,
# twice, plus a structural gate on an actual `jadebench -trace-out` artifact
# (DESIGN.md §4.16).
obs:
	$(GO) test -race -count=2 ./internal/obs/... ./internal/apps/serve/...
	$(GO) test -race -count=2 -run 'Obs|Export|Latency|TraceRing|RingCap|WorkerCaps|Serve|SV1' ./jade/... ./internal/exec/live/... ./internal/experiments/...
	go run ./cmd/jadebench -exp l3 -quick -trace-out /tmp/jade_l3_trace.json >/dev/null
	go run ./scripts/tracecheck -min-tasks 100 -want-flows /tmp/jade_l3_trace.json

# The benchmark-snapshot tier: engine throughput plus the S1 profiler sweep,
# recorded to BENCH_profile.json as a reviewable performance artifact.
bench:
	scripts/bench_snapshot.sh

# The live-bench tier: sustained wire-path throughput on the live executor
# (L3: tasks/sec + frames/sec over inproc and TCP loopback, best-of-N,
# bit-identity-checked every round), recorded to BENCH_live.json with the
# pre-overhaul baseline embedded (DESIGN.md §4.14).
live-bench:
	scripts/bench_snapshot.sh --live

# The tenant-bench tier: the multi-tenant serving stream (MT1: 100 mixed
# sessions through the admission gate on inproc and TCP loopback, every
# session bit-identity-checked), recorded to BENCH_tenant.json.
tenant-bench:
	scripts/bench_snapshot.sh --tenant

# The serve-bench tier: the serving-latency bench (SV1: open-loop
# request-DAG stream at three arrival rates on inproc and TCP loopback,
# p50/p90/p99/max from the log-bucketed histograms, every run
# bit-identity-checked), recorded to BENCH_serve.json (DESIGN.md §4.16).
serve-bench:
	scripts/bench_snapshot.sh --serve

clean:
	$(GO) clean ./...
